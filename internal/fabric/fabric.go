// Package fabric models a QsNetII-style switched interconnect: a fat tree
// of crossbar switches with cut-through (wormhole) routing, per-link FIFO
// serialization and full-bisection "fat" up-links. The same machinery with
// different parameters models the Ethernet that the TCP baseline PTL runs
// over.
//
// The fabric carries opaque packets between numbered ports (one port per
// NIC). It is purely event-driven: a Send computes the packet's path,
// reserves each link for its serialization time, and schedules delivery at
// the receiving port's handler. Packets between the same pair of ports are
// delivered in send order (deterministic routing, FIFO links).
//
// Under a sharded kernel the fabric is the cross-shard boundary. A port's
// node→switch up-link is exclusive to that port, so its reservation (and
// the onWire completion the NIC DMA engine waits for) happens inline on
// the sending entity's shard; the rest of the path crosses links shared
// with other senders, so it is deferred through Sched.Commit and replayed
// at the epoch barrier in deterministic (send time, source entity, source
// sequence) order. Deliveries are scheduled onto the destination port's
// entity, which is what bounds the engine's lookahead: no packet can
// affect another shard sooner than one WireLatency after its send.
package fabric

import (
	"fmt"

	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

// Params describes one fabric's physical characteristics.
type Params struct {
	// LinkBandwidth is the payload rate of a base (node-to-switch) link,
	// in bytes/second. Up-links between switch levels are "fat": level l
	// carries Arity^l times this rate, preserving full bisection.
	LinkBandwidth float64
	// WireLatency is the propagation delay of one link.
	WireLatency simtime.Duration
	// SwitchLatency is the crossing time of one switch crossbar.
	SwitchLatency simtime.Duration
	// MTU is the largest payload a single packet may carry. Senders (NIC
	// DMA engines) chunk larger transfers.
	MTU int
	// PacketOverhead is header/CRC bytes added to every packet on the wire.
	PacketOverhead int
	// Arity is the fan-out of each switch level (ports per side). A
	// quaternary fat tree has arity 4.
	Arity int
	// LossRate is the per-packet probability of a CRC error on the path.
	// QsNet's link layer detects and retransmits corrupted packets
	// in order (stop-and-go on the link), so a loss costs an extra
	// serialization pass plus RetryDelay but never reaches software and
	// never reorders — which is how the hardware keeps the reliable,
	// in-order guarantee upper layers assume.
	LossRate float64
	// RetryDelay is the link-level retransmission turnaround.
	RetryDelay simtime.Duration
}

// Packet is one wire packet. Payload is opaque to the fabric.
type Packet struct {
	Src, Dst int // port numbers
	Size     int // payload bytes (≤ MTU)
	Payload  any
}

// Handler receives packets delivered to a port. The packet is only valid
// for the duration of the call: the fabric recycles it afterwards, so a
// handler must take what it needs (typically the Payload) rather than
// retain the pointer.
type Handler func(pkt *Packet)

// delivery is a pooled delivery-event context. Its closure is allocated
// once per pooled entry and reused for every packet it delivers, so the
// per-packet delivery schedule costs no allocation. Deliveries pool per
// destination port: the handler runs (and recycles) on the destination
// entity's shard.
type delivery struct {
	n   *Network
	ps  *portState
	pkt *Packet
	at  simtime.Time
	fn  func()
}

// link is a directed link with FIFO serialization.
type link struct {
	name     string
	bw       float64 // bytes/sec
	nextFree simtime.Time
	// stats
	packets int64
	bytes   int64
}

// route is one memoized up-down path through the tree. Deterministic
// routing means the path per (src, dst) pair never changes, so it is
// computed once and reused for every subsequent packet.
type route struct {
	links    []*link
	switches int
}

// routeSlot is one entry of the bounded, direct-mapped route cache. A nil
// route marks the slot empty; on a key collision the old route is simply
// replaced (recomputing a path is cheap and deterministic, so eviction
// affects only the hit/miss counters, never timing).
type routeSlot struct {
	key int64
	r   *route
}

// portState is the per-port slice of fabric state: everything a sending
// or receiving entity touches on its own shard. Counters, free lists and
// the trace recorder live here so concurrent shards never share them; the
// Network-level accessors sum across ports.
type portState struct {
	sc      simtime.Sched
	tracer  *trace.Recorder
	handler Handler
	// uplink is the port's exclusive node→switch link, resolved at
	// BindPort so the sharded send path never touches the link maps.
	uplink *link

	freePkt []*Packet
	freeDel []*delivery

	sent      int64
	delivered int64
	bytesOut  int64
	bytesIn   int64
}

// getPacket takes a packet from the port's free list, or allocates one.
func (ps *portState) getPacket() *Packet {
	if ln := len(ps.freePkt); ln > 0 {
		p := ps.freePkt[ln-1]
		ps.freePkt = ps.freePkt[:ln-1]
		return p
	}
	return new(Packet)
}

// Network is a fat-tree fabric connecting a fixed number of ports.
type Network struct {
	k      *simtime.Kernel
	p      Params
	nports int
	arity  int
	levels int
	ports  []portState
	// par is true when the kernel is sharded: sends split into the inline
	// (entity-local) half and the committed (shared-path) half.
	par bool

	// up and down hold the directed links, indexed [level][subtree]
	// (level 0 "switch" indices are port numbers, so level 1 has one slot
	// per port, level 2 one per leaf switch, and so on). The per-level
	// pointer slices are preallocated at New — O(nports·arity/(arity-1))
	// total — while the links themselves are still created on first use,
	// so a 4096-port tree costs a few slices up front instead of a pair
	// of maps grown to every link ever touched.
	up   [][]*link
	down [][]*link

	// routes caches the up-down path per (src, dst) pair so routing cost
	// is paid once per pair, not once per packet. It is a fixed-size
	// direct-mapped cache rather than a map: at 4096 ports the full
	// (src, dst) cross product is 16M routes, which an unbounded memo
	// would happily hold. Bounding it keeps fabric memory O(nports).
	routes     []routeSlot
	routeShift uint

	retransmits int64
	routeHits   int64
	routeMisses int64
}

// SetTracer attaches a cross-layer event recorder to every port (nil
// detaches). Sharded clusters bind per-port recorders via BindPort
// instead, so each shard records into its own buffer.
func (n *Network) SetTracer(r *trace.Recorder) {
	for i := range n.ports {
		n.ports[i].tracer = r
	}
}

// BindPort associates port id with an entity scheduling context and a
// trace recorder for sharded runs. It must be called during setup, before
// the kernel runs; it also resolves the port's exclusive up-link so the
// inline send path never touches the shared link maps.
func (n *Network) BindPort(id int, sc simtime.Sched, r *trace.Recorder) {
	if id < 0 || id >= n.nports {
		panic(fmt.Sprintf("fabric: bind of invalid port %d", id))
	}
	ps := &n.ports[id]
	ps.sc = sc
	ps.tracer = r
	ps.uplink = n.linkFor(n.up, 1, id, "up")
}

func (n *Network) tracePkt(kind trace.Kind, at simtime.Time, src, dst, size int) {
	// Rank is the port acting; Peer the far end from its point of view.
	rank, peer := src, dst
	if kind == trace.PktDelivered {
		rank, peer = dst, src
	}
	r := n.ports[rank].tracer
	if r == nil {
		return
	}
	r.Record(trace.Event{
		At: at, Rank: rank, Layer: trace.LayerFabric, Kind: kind,
		Peer: peer, Bytes: size,
	})
}

// New builds a fabric with nports ports. The tree has as many levels as
// needed for the arity; eight nodes on an arity-8 radix fit under a single
// switch, matching the paper's QS-8A testbed.
func New(k *simtime.Kernel, p Params, nports int) *Network {
	if nports < 1 {
		panic("fabric: need at least one port")
	}
	if p.Arity < 2 {
		p.Arity = 4
	}
	if p.MTU <= 0 {
		panic("fabric: MTU must be positive")
	}
	n := &Network{
		k:      k,
		p:      p,
		nports: nports,
		arity:  p.Arity,
		ports:  make([]portState, nports),
		par:    k.Sharded() > 0,
	}
	if n.par && p.LossRate > 0 {
		// Loss draws consume the kernel's global random stream in send
		// order, which has no shard-independent definition.
		panic("fabric: LossRate > 0 is incompatible with a sharded kernel")
	}
	for i := range n.ports {
		n.ports[i].sc = k.SchedFor(simtime.GlobalEntity)
	}
	n.levels = 1
	capacity := n.arity
	for capacity < nports {
		capacity *= n.arity
		n.levels++
	}
	// Link tables: level l has one slot per level-(l-1) subtree.
	n.up = make([][]*link, n.levels+1)
	n.down = make([][]*link, n.levels+1)
	span := 1
	for l := 1; l <= n.levels; l++ {
		count := (nports + span - 1) / span
		n.up[l] = make([]*link, count)
		n.down[l] = make([]*link, count)
		span *= n.arity
	}
	// Route cache: ~16 slots per port, clamped to [2^8, 2^16] entries.
	slots := 256
	for slots < nports*16 && slots < 1<<16 {
		slots *= 2
	}
	n.routes = make([]routeSlot, slots)
	bits := uint(0)
	for 1<<bits < slots {
		bits++
	}
	n.routeShift = 64 - bits
	return n
}

// Ports returns the number of ports.
func (n *Network) Ports() int { return n.nports }

// Params returns the fabric parameters.
func (n *Network) Params() Params { return n.p }

// Lookahead returns the minimum virtual time by which any send precedes
// its earliest effect on another port: one wire propagation delay. It is
// the fabric's contribution to the sharded kernel's LBTS bound.
func (n *Network) Lookahead() simtime.Duration { return n.p.WireLatency }

// Attach installs the receive handler for port id. A port has exactly one
// owner; attaching twice indicates two NICs (or transports) claiming the
// same physical port and panics.
func (n *Network) Attach(id int, h Handler) {
	if id < 0 || id >= n.nports {
		panic(fmt.Sprintf("fabric: attach to invalid port %d", id))
	}
	if n.ports[id].handler != nil {
		panic(fmt.Sprintf("fabric: port %d already attached", id))
	}
	n.ports[id].handler = h
}

// switchOf returns the index of the level-l switch above port id.
// Level 1 switches are leaves; each covers arity^l ports.
func (n *Network) switchOf(id, l int) int {
	span := 1
	for i := 0; i < l; i++ {
		span *= n.arity
	}
	return id / span
}

// linkFor returns (creating on demand) the directed link between level l-1
// and level l above subtree sw, in the given direction. Level 0 "switch"
// indices are port numbers (the node-NIC link).
func (n *Network) linkFor(m [][]*link, l, sw int, dir string) *link {
	lk := m[l][sw]
	if lk == nil {
		bw := n.p.LinkBandwidth
		// Fat up-links: multiply bandwidth per level above the first.
		for i := 1; i < l; i++ {
			bw *= float64(n.arity)
		}
		lk = &link{name: fmt.Sprintf("%s:l%d:s%d", dir, l, sw), bw: bw}
		m[l][sw] = lk
	}
	return lk
}

// pathLinks returns the ordered links a packet traverses from src to dst,
// and the number of switches crossed. Routes are deterministic, so the
// result is memoized per (src, dst) pair in the bounded direct-mapped
// cache: the first packet (and any packet whose pair was evicted by a
// collision) pays the tree walk, every other packet is one probe. Only
// coordinator-context code (legacy sends, commit replay, setup) may call
// it.
func (n *Network) pathLinks(src, dst int) (links []*link, switches int) {
	key := int64(src)<<32 | int64(uint32(dst))
	// Fibonacci hashing spreads the (src, dst) pairs over the table.
	slot := &n.routes[uint64(key)*0x9E3779B97F4A7C15>>n.routeShift]
	if slot.r != nil && slot.key == key {
		n.routeHits++
		return slot.r.links, slot.r.switches
	}
	n.routeMisses++
	links, switches = n.computePath(src, dst)
	slot.key = key
	slot.r = &route{links: links, switches: switches}
	return links, switches
}

// computePath walks the fat tree to build the up-down path.
func (n *Network) computePath(src, dst int) (links []*link, switches int) {
	if src == dst {
		return nil, 0
	}
	// Find lowest common ancestor level: smallest l with same level-l switch.
	lca := 1
	for n.switchOf(src, lca) != n.switchOf(dst, lca) {
		lca++
	}
	// Up from src: node→leaf, then leaf→parent... up to level lca.
	sw := src
	for l := 1; l <= lca; l++ {
		links = append(links, n.linkFor(n.up, l, sw, "up"))
		sw = n.switchOf(src, l)
	}
	// Down to dst: from level lca down to the node link.
	for l := lca; l >= 1; l-- {
		var sub int
		if l == 1 {
			sub = dst
		} else {
			sub = n.switchOf(dst, l-1)
		}
		links = append(links, n.linkFor(n.down, l, sub, "down"))
	}
	switches = 2*lca - 1
	return links, switches
}

// Send injects a packet at its source port. Delivery is scheduled at the
// time implied by cut-through routing: the head flit advances hop by hop
// (queuing behind busy links), and the tail follows one serialization time
// behind on the bottleneck link. onWire, if non-nil, runs when the source
// link has finished serializing the packet (the moment a NIC's DMA engine
// is free to start the next packet).
func (n *Network) Send(pkt *Packet, onWire func()) {
	if pkt.Size < 0 || pkt.Size > n.p.MTU {
		panic(fmt.Sprintf("fabric: packet size %d outside [0,%d]", pkt.Size, n.p.MTU))
	}
	if pkt.Src < 0 || pkt.Src >= n.nports || pkt.Dst < 0 || pkt.Dst >= n.nports {
		panic(fmt.Sprintf("fabric: bad ports %d->%d", pkt.Src, pkt.Dst))
	}
	if n.par {
		n.sendSharded(pkt, onWire)
		return
	}
	ps := &n.ports[pkt.Src]
	ps.sent++
	ps.bytesOut += int64(pkt.Size)
	n.tracePkt(trace.PktSent, n.k.Now(), pkt.Src, pkt.Dst, pkt.Size)
	wire := pkt.Size + n.p.PacketOverhead
	now := n.k.Now()

	// Move the packet into a pooled copy: the caller's value never escapes
	// into the fabric, and the copy is recycled after delivery.
	q := ps.getPacket()
	*q = *pkt
	pkt = q

	if pkt.Src == pkt.Dst {
		// NIC loopback: no wire crossing, one switch-equivalent latency.
		n.deliverAt(now.Add(n.p.SwitchLatency), pkt)
		if onWire != nil {
			n.k.At(now.Add(n.p.SwitchLatency), "fabric:onwire-loop", onWire)
		}
		return
	}

	links, switches := n.pathLinks(pkt.Src, pkt.Dst)
	// CRC losses retransmit at the link layer: each lost pass costs a
	// full serialization plus the retry turnaround, in order.
	attempts := 1
	for n.p.LossRate > 0 && n.k.Rand().Float64() < n.p.LossRate && attempts < 100 {
		attempts++
	}
	n.retransmits += int64(attempts - 1)
	var tail, srcSerialized simtime.Time
	base := now
	for a := 0; a < attempts; a++ {
		head := base
		tail = 0
		for i, lk := range links {
			start := head
			if lk.nextFree > start {
				start = lk.nextFree
			}
			ser := simtime.BytesAt(wire, lk.bw)
			lk.nextFree = start.Add(ser)
			lk.packets++
			lk.bytes += int64(wire)
			// Head advances after the link's propagation delay; the tail
			// of the packet clears this link after serialization.
			head = start.Add(n.p.WireLatency)
			if t := start.Add(ser).Add(n.p.WireLatency); t > tail {
				tail = t
			}
			if i == 0 {
				srcSerialized = start.Add(ser)
			}
		}
		base = tail.Add(n.p.RetryDelay)
	}
	arrival := tail.Add(simtime.Duration(switches) * n.p.SwitchLatency)
	n.deliverAt(arrival, pkt)
	if onWire != nil {
		n.k.At(srcSerialized, "fabric:onwire", onWire)
	}
}

// sendSharded is Send on a sharded kernel, running on the source entity's
// shard. The exclusive up-link is reserved inline — it fixes the onWire
// time the sending NIC blocks on, with no shared state touched — and the
// shared remainder of the path is committed for barrier replay.
func (n *Network) sendSharded(pkt *Packet, onWire func()) {
	ps := &n.ports[pkt.Src]
	now := ps.sc.Now()
	ps.sent++
	ps.bytesOut += int64(pkt.Size)
	n.tracePkt(trace.PktSent, now, pkt.Src, pkt.Dst, pkt.Size)
	q := ps.getPacket()
	*q = *pkt

	if q.Src == q.Dst {
		// Loopback never leaves the entity: deliver locally.
		n.deliverAt(now.Add(n.p.SwitchLatency), q)
		if onWire != nil {
			ps.sc.At(now.Add(n.p.SwitchLatency), "fabric:onwire-loop", onWire)
		}
		return
	}
	if ps.uplink == nil {
		panic(fmt.Sprintf("fabric: sharded send from unbound port %d", q.Src))
	}
	wire := q.Size + n.p.PacketOverhead
	start := now
	if ps.uplink.nextFree > start {
		start = ps.uplink.nextFree
	}
	ser := simtime.BytesAt(wire, ps.uplink.bw)
	ps.uplink.nextFree = start.Add(ser)
	ps.uplink.packets++
	ps.uplink.bytes += int64(wire)
	srcSerialized := start.Add(ser)
	head := start.Add(n.p.WireLatency)
	tail := srcSerialized.Add(n.p.WireLatency)
	if onWire != nil {
		ps.sc.At(srcSerialized, "fabric:onwire", onWire)
	}
	ps.sc.Commit("fabric:route", func() {
		n.finishSend(q, wire, head, tail)
	})
}

// finishSend replays the shared half of a sharded Send at the epoch
// barrier: reserve every link past the source up-link, then schedule the
// delivery onto the destination entity. Replay order across senders is
// the mailbox's (send time, source entity, source sequence) order.
func (n *Network) finishSend(pkt *Packet, wire int, head, tail simtime.Time) {
	links, switches := n.pathLinks(pkt.Src, pkt.Dst)
	if links[0] != n.ports[pkt.Src].uplink {
		panic(fmt.Sprintf("fabric: path %d->%d does not start at the source up-link", pkt.Src, pkt.Dst))
	}
	for _, lk := range links[1:] {
		start := head
		if lk.nextFree > start {
			start = lk.nextFree
		}
		ser := simtime.BytesAt(wire, lk.bw)
		lk.nextFree = start.Add(ser)
		lk.packets++
		lk.bytes += int64(wire)
		head = start.Add(n.p.WireLatency)
		if t := start.Add(ser).Add(n.p.WireLatency); t > tail {
			tail = t
		}
	}
	arrival := tail.Add(simtime.Duration(switches) * n.p.SwitchLatency)
	n.deliverAt(arrival, pkt)
}

// SendMulti injects a hardware multicast: the switches replicate the
// packet down the tree, so each link on the union of paths carries it
// exactly once (this is QsNet's hardware broadcast). payload builds the
// per-destination payload (destinations may need different context
// routing); size and src are shared. Destinations equal to src get a
// loopback delivery.
func (n *Network) SendMulti(src, size int, dsts []int, payload func(dst int) any, onWire func()) {
	if size < 0 || size > n.p.MTU {
		panic(fmt.Sprintf("fabric: multicast size %d outside [0,%d]", size, n.p.MTU))
	}
	if n.par {
		n.sendMultiSharded(src, size, dsts, payload, onWire)
		return
	}
	wire := size + n.p.PacketOverhead
	now := n.k.Now()
	starts := make(map[*link]simtime.Time)
	var srcSerialized simtime.Time
	for _, dst := range dsts {
		ps := &n.ports[src]
		if dst == src {
			ps.sent++
			ps.bytesOut += int64(size)
			n.tracePkt(trace.PktSent, n.k.Now(), src, dst, size)
			q := ps.getPacket()
			*q = Packet{Src: src, Dst: dst, Size: size, Payload: payload(dst)}
			n.deliverAt(now.Add(n.p.SwitchLatency), q)
			continue
		}
		links, switches := n.pathLinks(src, dst)
		head := now
		var tail simtime.Time
		for i, lk := range links {
			start, seen := starts[lk]
			if !seen {
				start = head
				if lk.nextFree > start {
					start = lk.nextFree
				}
				lk.nextFree = start.Add(simtime.BytesAt(wire, lk.bw))
				lk.packets++
				lk.bytes += int64(wire)
				starts[lk] = start
			}
			head = start.Add(n.p.WireLatency)
			if t := start.Add(simtime.BytesAt(wire, lk.bw)).Add(n.p.WireLatency); t > tail {
				tail = t
			}
			if i == 0 && srcSerialized == 0 {
				srcSerialized = start.Add(simtime.BytesAt(wire, lk.bw))
			}
		}
		ps.sent++
		ps.bytesOut += int64(size)
		n.tracePkt(trace.PktSent, n.k.Now(), src, dst, size)
		q := ps.getPacket()
		*q = Packet{Src: src, Dst: dst, Size: size, Payload: payload(dst)}
		n.deliverAt(tail.Add(simtime.Duration(switches)*n.p.SwitchLatency), q)
	}
	if onWire != nil {
		if srcSerialized == 0 {
			srcSerialized = now
		}
		n.k.At(srcSerialized, "fabric:onwire-multi", onWire)
	}
}

// sendMultiSharded is SendMulti on a sharded kernel. Loopback copies stay
// entity-local; one inline reservation of the exclusive up-link covers all
// remote destinations (the hardware replicates past it), and the shared
// remainder of the union of paths is committed for barrier replay.
func (n *Network) sendMultiSharded(src, size int, dsts []int, payload func(dst int) any, onWire func()) {
	ps := &n.ports[src]
	now := ps.sc.Now()
	wire := size + n.p.PacketOverhead
	var srcSerialized simtime.Time
	var remote []int
	for _, dst := range dsts {
		if dst == src {
			ps.sent++
			ps.bytesOut += int64(size)
			n.tracePkt(trace.PktSent, now, src, dst, size)
			q := ps.getPacket()
			*q = Packet{Src: src, Dst: dst, Size: size, Payload: payload(dst)}
			n.deliverAt(now.Add(n.p.SwitchLatency), q)
			continue
		}
		remote = append(remote, dst)
	}
	if len(remote) > 0 {
		if ps.uplink == nil {
			panic(fmt.Sprintf("fabric: sharded multicast from unbound port %d", src))
		}
		start := now
		if ps.uplink.nextFree > start {
			start = ps.uplink.nextFree
		}
		ser := simtime.BytesAt(wire, ps.uplink.bw)
		ps.uplink.nextFree = start.Add(ser)
		ps.uplink.packets++
		ps.uplink.bytes += int64(wire)
		srcSerialized = start.Add(ser)
		pkts := make([]*Packet, len(remote))
		for i, dst := range remote {
			ps.sent++
			ps.bytesOut += int64(size)
			n.tracePkt(trace.PktSent, now, src, dst, size)
			q := ps.getPacket()
			*q = Packet{Src: src, Dst: dst, Size: size, Payload: payload(dst)}
			pkts[i] = q
		}
		ps.sc.Commit("fabric:mcast", func() {
			n.finishMulti(src, wire, start, remote, pkts)
		})
	}
	if onWire != nil {
		t := srcSerialized
		if t == 0 {
			t = now
		}
		ps.sc.At(t, "fabric:onwire-multi", onWire)
	}
}

// finishMulti replays the shared half of a sharded multicast at the epoch
// barrier. The starts map is pre-seeded with the inline up-link
// reservation, so the walk is identical to the legacy loop.
func (n *Network) finishMulti(src, wire int, upStart simtime.Time, remote []int, pkts []*Packet) {
	ps := &n.ports[src]
	starts := map[*link]simtime.Time{ps.uplink: upStart}
	for i, dst := range remote {
		links, switches := n.pathLinks(src, dst)
		if links[0] != ps.uplink {
			panic(fmt.Sprintf("fabric: path %d->%d does not start at the source up-link", src, dst))
		}
		head := upStart.Add(n.p.WireLatency)
		tail := upStart.Add(simtime.BytesAt(wire, ps.uplink.bw)).Add(n.p.WireLatency)
		for _, lk := range links[1:] {
			start, seen := starts[lk]
			if !seen {
				start = head
				if lk.nextFree > start {
					start = lk.nextFree
				}
				lk.nextFree = start.Add(simtime.BytesAt(wire, lk.bw))
				lk.packets++
				lk.bytes += int64(wire)
				starts[lk] = start
			}
			head = start.Add(n.p.WireLatency)
			if t := start.Add(simtime.BytesAt(wire, lk.bw)).Add(n.p.WireLatency); t > tail {
				tail = t
			}
		}
		n.deliverAt(tail.Add(simtime.Duration(switches)*n.p.SwitchLatency), pkts[i])
	}
}

func (n *Network) deliverAt(t simtime.Time, pkt *Packet) {
	ps := &n.ports[pkt.Dst]
	var d *delivery
	if ln := len(ps.freeDel); ln > 0 {
		d = ps.freeDel[ln-1]
		ps.freeDel = ps.freeDel[:ln-1]
	} else {
		d = &delivery{n: n, ps: ps}
		d.fn = func() {
			p := d.pkt
			d.pkt = nil
			nn := d.n
			d.ps.delivered++
			d.ps.bytesIn += int64(p.Size)
			nn.tracePkt(trace.PktDelivered, d.at, p.Src, p.Dst, p.Size)
			h := d.ps.handler
			if h == nil {
				panic(fmt.Sprintf("fabric: no handler attached to port %d", p.Dst))
			}
			h(p)
			// Per the Handler contract the packet is dead once the handler
			// returns; recycle it and this delivery slot.
			*p = Packet{}
			d.ps.freePkt = append(d.ps.freePkt, p)
			d.ps.freeDel = append(d.ps.freeDel, d)
		}
	}
	d.pkt = pkt
	d.at = t
	ps.sc.At(t, "fabric:deliver", d.fn)
}

// Stats reports totals for tests and tools, summed across ports.
func (n *Network) Stats() (sent, delivered int64) {
	for i := range n.ports {
		sent += n.ports[i].sent
		delivered += n.ports[i].delivered
	}
	return sent, delivered
}

// PortCounters is one port's cumulative traffic snapshot — what the
// telemetry sampler (obs.Sampler) reads on each tick. Sent/Delivered and
// BytesOut/BytesIn are payload-level port counters; UplinkPackets and
// UplinkBytes are the wire-level totals (payload plus overhead, every
// serialization pass) of the port's exclusive node→switch up-link, the
// hop whose utilization bounds what the NIC can inject.
type PortCounters struct {
	Sent, Delivered   int64
	BytesOut, BytesIn int64
	UplinkPackets     int64
	UplinkBytes       int64
}

// PortCounters returns port id's traffic snapshot. All counters are
// entity-local (bumped on the owning shard) or replayed at epoch
// barriers before any coordinator event, so reading them from a
// GlobalEntity timer tick is deterministic at any shard count.
func (n *Network) PortCounters(id int) PortCounters {
	if id < 0 || id >= n.nports {
		panic(fmt.Sprintf("fabric: counters of invalid port %d", id))
	}
	ps := &n.ports[id]
	up := ps.uplink
	if up == nil {
		up = n.linkFor(n.up, 1, id, "up")
	}
	return PortCounters{
		Sent: ps.sent, Delivered: ps.delivered,
		BytesOut: ps.bytesOut, BytesIn: ps.bytesIn,
		UplinkPackets: up.packets, UplinkBytes: up.bytes,
	}
}

// Retransmits reports link-level CRC retransmissions.
func (n *Network) Retransmits() int64 { return n.retransmits }

// BytesSent reports total payload bytes injected (excluding overhead).
func (n *Network) BytesSent() int64 {
	var b int64
	for i := range n.ports {
		b += n.ports[i].bytesOut
	}
	return b
}

// RouteCacheStats reports memoized-route lookups: hits reused a cached
// up-down path, misses paid the tree walk.
func (n *Network) RouteCacheStats() (hits, misses int64) {
	return n.routeHits, n.routeMisses
}

// ZeroByteLatency returns the modelled latency of a minimal packet between
// two distinct ports under no contention: per-hop wire latency plus switch
// crossings plus header serialization. Useful for calibration tests.
func (n *Network) ZeroByteLatency(src, dst int) simtime.Duration {
	links, switches := n.pathLinks(src, dst)
	d := simtime.Duration(switches) * n.p.SwitchLatency
	d += simtime.Duration(len(links)) * n.p.WireLatency
	// Header bytes serialize on the bottleneck (slowest) link once.
	var minBW float64
	for i, lk := range links {
		if i == 0 || lk.bw < minBW {
			minBW = lk.bw
		}
	}
	d += simtime.BytesAt(n.p.PacketOverhead, minBW)
	return d
}
