// Package fabric models a QsNetII-style switched interconnect: a fat tree
// of crossbar switches with cut-through (wormhole) routing, per-link FIFO
// serialization and full-bisection "fat" up-links. The same machinery with
// different parameters models the Ethernet that the TCP baseline PTL runs
// over.
//
// The fabric carries opaque packets between numbered ports (one port per
// NIC). It is purely event-driven: a Send computes the packet's path,
// reserves each link for its serialization time, and schedules delivery at
// the receiving port's handler. Packets between the same pair of ports are
// delivered in send order (deterministic routing, FIFO links).
package fabric

import (
	"fmt"

	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

// Params describes one fabric's physical characteristics.
type Params struct {
	// LinkBandwidth is the payload rate of a base (node-to-switch) link,
	// in bytes/second. Up-links between switch levels are "fat": level l
	// carries Arity^l times this rate, preserving full bisection.
	LinkBandwidth float64
	// WireLatency is the propagation delay of one link.
	WireLatency simtime.Duration
	// SwitchLatency is the crossing time of one switch crossbar.
	SwitchLatency simtime.Duration
	// MTU is the largest payload a single packet may carry. Senders (NIC
	// DMA engines) chunk larger transfers.
	MTU int
	// PacketOverhead is header/CRC bytes added to every packet on the wire.
	PacketOverhead int
	// Arity is the fan-out of each switch level (ports per side). A
	// quaternary fat tree has arity 4.
	Arity int
	// LossRate is the per-packet probability of a CRC error on the path.
	// QsNet's link layer detects and retransmits corrupted packets
	// in order (stop-and-go on the link), so a loss costs an extra
	// serialization pass plus RetryDelay but never reaches software and
	// never reorders — which is how the hardware keeps the reliable,
	// in-order guarantee upper layers assume.
	LossRate float64
	// RetryDelay is the link-level retransmission turnaround.
	RetryDelay simtime.Duration
}

// Packet is one wire packet. Payload is opaque to the fabric.
type Packet struct {
	Src, Dst int // port numbers
	Size     int // payload bytes (≤ MTU)
	Payload  any
}

// Handler receives packets delivered to a port. The packet is only valid
// for the duration of the call: the fabric recycles it afterwards, so a
// handler must take what it needs (typically the Payload) rather than
// retain the pointer.
type Handler func(pkt *Packet)

// delivery is a pooled delivery-event context. Its closure is allocated
// once per pooled entry and reused for every packet it delivers, so the
// per-packet delivery schedule costs no allocation.
type delivery struct {
	n   *Network
	pkt *Packet
	fn  func()
}

// link is a directed link with FIFO serialization.
type link struct {
	name     string
	bw       float64 // bytes/sec
	nextFree simtime.Time
	// stats
	packets int64
	bytes   int64
}

// linkKey identifies a directed link: the hop between level l-1 and level
// l above subtree sw (level 0 "switch" indices are port numbers).
type linkKey struct {
	l, sw int
}

// route is one memoized up-down path through the tree. Deterministic
// routing means the path per (src, dst) pair never changes, so it is
// computed once and reused for every subsequent packet.
type route struct {
	links    []*link
	switches int
}

// Network is a fat-tree fabric connecting a fixed number of ports.
type Network struct {
	k        *simtime.Kernel
	p        Params
	nports   int
	arity    int
	levels   int
	handlers []Handler

	up   map[linkKey]*link // directed links by (level, subtree)
	down map[linkKey]*link

	// routes caches the up-down path per (src, dst) pair so routing cost
	// is paid once per pair, not once per packet.
	routes map[int64]*route

	// freePkt and freeDel recycle packets and delivery events; both are
	// returned to the lists when the receive handler comes back.
	freePkt []*Packet
	freeDel []*delivery

	sent        int64
	delivered   int64
	retransmits int64
	bytesSent   int64
	routeHits   int64
	routeMisses int64

	// tracer, when attached, receives pkt-sent/pkt-delivered instants.
	// Recording is pure host-side bookkeeping — no virtual-time cost.
	tracer *trace.Recorder
}

// SetTracer attaches a cross-layer event recorder (nil detaches it).
func (n *Network) SetTracer(r *trace.Recorder) { n.tracer = r }

func (n *Network) tracePkt(kind trace.Kind, src, dst, size int) {
	if n.tracer == nil {
		return
	}
	// Rank is the port acting; Peer the far end from its point of view.
	rank, peer := src, dst
	if kind == trace.PktDelivered {
		rank, peer = dst, src
	}
	n.tracer.Record(trace.Event{
		At: n.k.Now(), Rank: rank, Layer: trace.LayerFabric, Kind: kind,
		Peer: peer, Bytes: size,
	})
}

// New builds a fabric with nports ports. The tree has as many levels as
// needed for the arity; eight nodes on an arity-8 radix fit under a single
// switch, matching the paper's QS-8A testbed.
func New(k *simtime.Kernel, p Params, nports int) *Network {
	if nports < 1 {
		panic("fabric: need at least one port")
	}
	if p.Arity < 2 {
		p.Arity = 4
	}
	if p.MTU <= 0 {
		panic("fabric: MTU must be positive")
	}
	n := &Network{
		k:        k,
		p:        p,
		nports:   nports,
		arity:    p.Arity,
		handlers: make([]Handler, nports),
		up:       make(map[linkKey]*link),
		down:     make(map[linkKey]*link),
		routes:   make(map[int64]*route),
	}
	n.levels = 1
	capacity := n.arity
	for capacity < nports {
		capacity *= n.arity
		n.levels++
	}
	return n
}

// Ports returns the number of ports.
func (n *Network) Ports() int { return n.nports }

// Params returns the fabric parameters.
func (n *Network) Params() Params { return n.p }

// Attach installs the receive handler for port id. A port has exactly one
// owner; attaching twice indicates two NICs (or transports) claiming the
// same physical port and panics.
func (n *Network) Attach(id int, h Handler) {
	if id < 0 || id >= n.nports {
		panic(fmt.Sprintf("fabric: attach to invalid port %d", id))
	}
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("fabric: port %d already attached", id))
	}
	n.handlers[id] = h
}

// switchOf returns the index of the level-l switch above port id.
// Level 1 switches are leaves; each covers arity^l ports.
func (n *Network) switchOf(id, l int) int {
	span := 1
	for i := 0; i < l; i++ {
		span *= n.arity
	}
	return id / span
}

// linkFor returns (creating on demand) the directed link between level l-1
// and level l above subtree sw, in the given direction. Level 0 "switch"
// indices are port numbers (the node-NIC link).
func (n *Network) linkFor(m map[linkKey]*link, l, sw int, dir string) *link {
	key := linkKey{l: l, sw: sw}
	lk, ok := m[key]
	if !ok {
		bw := n.p.LinkBandwidth
		// Fat up-links: multiply bandwidth per level above the first.
		for i := 1; i < l; i++ {
			bw *= float64(n.arity)
		}
		lk = &link{name: fmt.Sprintf("%s:l%d:s%d", dir, l, sw), bw: bw}
		m[key] = lk
	}
	return lk
}

// pathLinks returns the ordered links a packet traverses from src to dst,
// and the number of switches crossed. Routes are deterministic, so the
// result is memoized per (src, dst) pair: the first packet pays the tree
// walk, every later packet is one map lookup.
func (n *Network) pathLinks(src, dst int) (links []*link, switches int) {
	key := int64(src)<<32 | int64(uint32(dst))
	if r, ok := n.routes[key]; ok {
		n.routeHits++
		return r.links, r.switches
	}
	n.routeMisses++
	links, switches = n.computePath(src, dst)
	n.routes[key] = &route{links: links, switches: switches}
	return links, switches
}

// computePath walks the fat tree to build the up-down path.
func (n *Network) computePath(src, dst int) (links []*link, switches int) {
	if src == dst {
		return nil, 0
	}
	// Find lowest common ancestor level: smallest l with same level-l switch.
	lca := 1
	for n.switchOf(src, lca) != n.switchOf(dst, lca) {
		lca++
	}
	// Up from src: node→leaf, then leaf→parent... up to level lca.
	sw := src
	for l := 1; l <= lca; l++ {
		links = append(links, n.linkFor(n.up, l, sw, "up"))
		sw = n.switchOf(src, l)
	}
	// Down to dst: from level lca down to the node link.
	for l := lca; l >= 1; l-- {
		var sub int
		if l == 1 {
			sub = dst
		} else {
			sub = n.switchOf(dst, l-1)
		}
		links = append(links, n.linkFor(n.down, l, sub, "down"))
	}
	switches = 2*lca - 1
	return links, switches
}

// Send injects a packet at its source port. Delivery is scheduled at the
// time implied by cut-through routing: the head flit advances hop by hop
// (queuing behind busy links), and the tail follows one serialization time
// behind on the bottleneck link. onWire, if non-nil, runs when the source
// link has finished serializing the packet (the moment a NIC's DMA engine
// is free to start the next packet).
func (n *Network) Send(pkt *Packet, onWire func()) {
	if pkt.Size < 0 || pkt.Size > n.p.MTU {
		panic(fmt.Sprintf("fabric: packet size %d outside [0,%d]", pkt.Size, n.p.MTU))
	}
	if pkt.Src < 0 || pkt.Src >= n.nports || pkt.Dst < 0 || pkt.Dst >= n.nports {
		panic(fmt.Sprintf("fabric: bad ports %d->%d", pkt.Src, pkt.Dst))
	}
	n.sent++
	n.bytesSent += int64(pkt.Size)
	n.tracePkt(trace.PktSent, pkt.Src, pkt.Dst, pkt.Size)
	wire := pkt.Size + n.p.PacketOverhead
	now := n.k.Now()

	// Move the packet into a pooled copy: the caller's value never escapes
	// into the fabric, and the copy is recycled after delivery.
	q := n.getPacket()
	*q = *pkt
	pkt = q

	if pkt.Src == pkt.Dst {
		// NIC loopback: no wire crossing, one switch-equivalent latency.
		n.deliverAt(now.Add(n.p.SwitchLatency), pkt)
		if onWire != nil {
			n.k.At(now.Add(n.p.SwitchLatency), "fabric:onwire-loop", onWire)
		}
		return
	}

	links, switches := n.pathLinks(pkt.Src, pkt.Dst)
	// CRC losses retransmit at the link layer: each lost pass costs a
	// full serialization plus the retry turnaround, in order.
	attempts := 1
	for n.p.LossRate > 0 && n.k.Rand().Float64() < n.p.LossRate && attempts < 100 {
		attempts++
	}
	n.retransmits += int64(attempts - 1)
	var tail, srcSerialized simtime.Time
	base := now
	for a := 0; a < attempts; a++ {
		head := base
		tail = 0
		for i, lk := range links {
			start := head
			if lk.nextFree > start {
				start = lk.nextFree
			}
			ser := simtime.BytesAt(wire, lk.bw)
			lk.nextFree = start.Add(ser)
			lk.packets++
			lk.bytes += int64(wire)
			// Head advances after the link's propagation delay; the tail
			// of the packet clears this link after serialization.
			head = start.Add(n.p.WireLatency)
			if t := start.Add(ser).Add(n.p.WireLatency); t > tail {
				tail = t
			}
			if i == 0 {
				srcSerialized = start.Add(ser)
			}
		}
		base = tail.Add(n.p.RetryDelay)
	}
	arrival := tail.Add(simtime.Duration(switches) * n.p.SwitchLatency)
	n.deliverAt(arrival, pkt)
	if onWire != nil {
		n.k.At(srcSerialized, "fabric:onwire", onWire)
	}
}

// SendMulti injects a hardware multicast: the switches replicate the
// packet down the tree, so each link on the union of paths carries it
// exactly once (this is QsNet's hardware broadcast). payload builds the
// per-destination payload (destinations may need different context
// routing); size and src are shared. Destinations equal to src get a
// loopback delivery.
func (n *Network) SendMulti(src, size int, dsts []int, payload func(dst int) any, onWire func()) {
	if size < 0 || size > n.p.MTU {
		panic(fmt.Sprintf("fabric: multicast size %d outside [0,%d]", size, n.p.MTU))
	}
	wire := size + n.p.PacketOverhead
	now := n.k.Now()
	starts := make(map[*link]simtime.Time)
	var srcSerialized simtime.Time
	for _, dst := range dsts {
		if dst == src {
			n.sent++
			n.bytesSent += int64(size)
			n.tracePkt(trace.PktSent, src, dst, size)
			q := n.getPacket()
			*q = Packet{Src: src, Dst: dst, Size: size, Payload: payload(dst)}
			n.deliverAt(now.Add(n.p.SwitchLatency), q)
			continue
		}
		links, switches := n.pathLinks(src, dst)
		head := now
		var tail simtime.Time
		for i, lk := range links {
			start, seen := starts[lk]
			if !seen {
				start = head
				if lk.nextFree > start {
					start = lk.nextFree
				}
				lk.nextFree = start.Add(simtime.BytesAt(wire, lk.bw))
				lk.packets++
				lk.bytes += int64(wire)
				starts[lk] = start
			}
			head = start.Add(n.p.WireLatency)
			if t := start.Add(simtime.BytesAt(wire, lk.bw)).Add(n.p.WireLatency); t > tail {
				tail = t
			}
			if i == 0 && srcSerialized == 0 {
				srcSerialized = start.Add(simtime.BytesAt(wire, lk.bw))
			}
		}
		n.sent++
		n.bytesSent += int64(size)
		n.tracePkt(trace.PktSent, src, dst, size)
		q := n.getPacket()
		*q = Packet{Src: src, Dst: dst, Size: size, Payload: payload(dst)}
		n.deliverAt(tail.Add(simtime.Duration(switches)*n.p.SwitchLatency), q)
	}
	if onWire != nil {
		if srcSerialized == 0 {
			srcSerialized = now
		}
		n.k.At(srcSerialized, "fabric:onwire-multi", onWire)
	}
}

// getPacket takes a packet from the free list, or allocates one.
func (n *Network) getPacket() *Packet {
	if ln := len(n.freePkt); ln > 0 {
		p := n.freePkt[ln-1]
		n.freePkt = n.freePkt[:ln-1]
		return p
	}
	return new(Packet)
}

func (n *Network) deliverAt(t simtime.Time, pkt *Packet) {
	var d *delivery
	if ln := len(n.freeDel); ln > 0 {
		d = n.freeDel[ln-1]
		n.freeDel = n.freeDel[:ln-1]
	} else {
		d = &delivery{n: n}
		d.fn = func() {
			p := d.pkt
			d.pkt = nil
			nn := d.n
			nn.delivered++
			nn.tracePkt(trace.PktDelivered, p.Src, p.Dst, p.Size)
			h := nn.handlers[p.Dst]
			if h == nil {
				panic(fmt.Sprintf("fabric: no handler attached to port %d", p.Dst))
			}
			h(p)
			// Per the Handler contract the packet is dead once the handler
			// returns; recycle it and this delivery slot.
			*p = Packet{}
			nn.freePkt = append(nn.freePkt, p)
			nn.freeDel = append(nn.freeDel, d)
		}
	}
	d.pkt = pkt
	n.k.At(t, "fabric:deliver", d.fn)
}

// Stats reports totals for tests and tools.
func (n *Network) Stats() (sent, delivered int64) { return n.sent, n.delivered }

// Retransmits reports link-level CRC retransmissions.
func (n *Network) Retransmits() int64 { return n.retransmits }

// BytesSent reports total payload bytes injected (excluding overhead).
func (n *Network) BytesSent() int64 { return n.bytesSent }

// RouteCacheStats reports memoized-route lookups: hits reused a cached
// up-down path, misses paid the tree walk.
func (n *Network) RouteCacheStats() (hits, misses int64) {
	return n.routeHits, n.routeMisses
}

// ZeroByteLatency returns the modelled latency of a minimal packet between
// two distinct ports under no contention: per-hop wire latency plus switch
// crossings plus header serialization. Useful for calibration tests.
func (n *Network) ZeroByteLatency(src, dst int) simtime.Duration {
	links, switches := n.pathLinks(src, dst)
	d := simtime.Duration(switches) * n.p.SwitchLatency
	d += simtime.Duration(len(links)) * n.p.WireLatency
	// Header bytes serialize on the bottleneck (slowest) link once.
	var minBW float64
	for i, lk := range links {
		if i == 0 || lk.bw < minBW {
			minBW = lk.bw
		}
	}
	d += simtime.BytesAt(n.p.PacketOverhead, minBW)
	return d
}
