// Package mpichq is a thin MPI-style layer over the Tport emulation,
// standing in for MPICH-QsNetII: the default, statically-connected MPI on
// Quadrics that the paper benchmarks against in Fig. 10. It provides just
// the point-to-point surface the comparison needs; there is no dynamic
// process management — the process pool is fixed at job launch, which is
// precisely the limitation the paper's PTL design removes.
package mpichq

import (
	"fmt"

	"qsmpi/internal/elan4"
	"qsmpi/internal/fabric"
	"qsmpi/internal/model"
	"qsmpi/internal/obs"
	"qsmpi/internal/simtime"
	"qsmpi/internal/tport"
	"qsmpi/internal/trace"
)

// emptyResolver: MPICH-QsNetII does not route through the RTE — tport
// addressing is static — but the NIC model wants a resolver for its
// standard QDMA path, which this job never exercises.
type emptyResolver struct{}

func (emptyResolver) Resolve(int) (int, int, bool) { return 0, 0, false }

// Job is a statically-launched MPICH-QsNetII run.
type Job struct {
	K     *simtime.Kernel
	Cfg   model.Config
	Net   *fabric.Network
	Hosts []*simtime.Host
	NICs  []*elan4.NIC
	Eps   []*tport.Endpoint

	nprocs int
}

// NewJob builds the cluster and one Tport endpoint per rank (rank i on
// node i — the static VPID=rank coupling).
func NewJob(nprocs int, override *model.Config) *Job {
	cfg := model.Default()
	if override != nil {
		cfg = *override
	}
	k := simtime.NewKernel()
	j := &Job{K: k, Cfg: cfg, nprocs: nprocs}
	j.Net = fabric.New(k, fabric.Params{
		LinkBandwidth:  cfg.LinkBandwidth,
		WireLatency:    cfg.WireLatency,
		SwitchLatency:  cfg.SwitchLatency,
		MTU:            cfg.MTU,
		PacketOverhead: cfg.PacketOverhead,
		Arity:          cfg.FatTreeRadix,
	}, nprocs)
	ports := make([]int, nprocs)
	for i := range ports {
		ports[i] = i
	}
	for i := 0; i < nprocs; i++ {
		h := simtime.NewHost(k, fmt.Sprintf("node%d", i), cfg.HostCPUs)
		nic := elan4.NewNIC(k, h, j.Net, i, cfg, emptyResolver{})
		j.Hosts = append(j.Hosts, h)
		j.NICs = append(j.NICs, nic)
		j.Eps = append(j.Eps, tport.New(k, h, nic, cfg, i, ports))
	}
	return j
}

// SetTracer attaches a cross-layer event recorder to every endpoint, NIC
// and the fabric — the MPICH-QsNetII counterpart of cluster.Spec.Tracer.
func (j *Job) SetTracer(rec *trace.Recorder) {
	j.Net.SetTracer(rec)
	for _, nic := range j.NICs {
		nic.SetTracer(rec)
	}
	for _, ep := range j.Eps {
		ep.SetTracer(rec)
	}
}

// RegisterMetrics installs collectors for the tport layer (and the
// underlying NICs and fabric) into r, mirroring cluster.RegisterMetrics
// for the MPICH-QsNetII baseline stack.
func (j *Job) RegisterMetrics(r *obs.Registry) {
	r.Collect(func(emit obs.EmitFn) {
		for rank, ep := range j.Eps {
			st := ep.Stats()
			emit("tport", "nic_matches", rank, float64(st.NICMatches))
			emit("tport", "unexpected", rank, float64(st.Unexpected))
			emit("tport", "eager_tx", rank, float64(st.EagerTx))
			emit("tport", "rndv_tx", rank, float64(st.RndvTx))
			emit("tport", "pull_chunks", rank, float64(st.PullChunks))
		}
		for node, nic := range j.NICs {
			st := nic.Stats()
			emit("elan4", "qdmas", node, float64(st.QDMAs))
			emit("elan4", "rdma_reads", node, float64(st.RDMAReads))
			emit("elan4", "dma_completed", node, float64(st.DMACompleted))
			emit("elan4", "bytes_sent", node, float64(st.BytesSent))
		}
		sent, delivered := j.Net.Stats()
		emit("fabric", "pkts_sent", -1, float64(sent))
		emit("fabric", "pkts_delivered", -1, float64(delivered))
		emit("fabric", "payload_bytes", -1, float64(j.Net.BytesSent()))
	})
}

// Comm is the per-rank communication handle.
type Comm struct {
	ep   *tport.Endpoint
	size int
}

// Rank returns the calling process's rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// Size returns the job size.
func (c *Comm) Size() int { return c.size }

// Send is a blocking tagged send.
func (c *Comm) Send(th *simtime.Thread, dst, tag int, data []byte) {
	c.ep.Send(th, dst, tag, data)
}

// Recv is a blocking tagged receive returning the message length.
func (c *Comm) Recv(th *simtime.Thread, src, tag int, buf []byte) int {
	return c.ep.Recv(th, src, tag, buf)
}

// Isend starts a nonblocking send.
func (c *Comm) Isend(th *simtime.Thread, dst, tag int, data []byte) *tport.SendHandle {
	return c.ep.Isend(th, dst, tag, data)
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(th *simtime.Thread, src, tag int, buf []byte) *tport.RecvHandle {
	return c.ep.Irecv(th, src, tag, buf)
}

// Launch spawns main for every rank.
func (j *Job) Launch(main func(rank int, th *simtime.Thread, c *Comm)) {
	for r := 0; r < j.nprocs; r++ {
		r := r
		j.Hosts[r].Spawn(fmt.Sprintf("rank%d", r), func(th *simtime.Thread) {
			main(r, th, &Comm{ep: j.Eps[r], size: j.nprocs})
		})
	}
}

// Run executes to quiescence, reporting deadlocks.
func (j *Job) Run() error {
	j.K.Run()
	if st := j.K.Stalled(); len(st) != 0 {
		return fmt.Errorf("mpichq: deadlock, stalled: %v", st)
	}
	return nil
}
