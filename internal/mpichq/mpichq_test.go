package mpichq_test

import (
	"bytes"
	"testing"

	"qsmpi/internal/mpichq"
	"qsmpi/internal/simtime"
)

func TestJobRing(t *testing.T) {
	const n = 8
	j := mpichq.NewJob(n, nil)
	verified := 0
	j.Launch(func(rank int, th *simtime.Thread, c *mpichq.Comm) {
		if c.Rank() != rank || c.Size() != n {
			t.Errorf("rank/size wrong: %d/%d", c.Rank(), c.Size())
		}
		msg := bytes.Repeat([]byte{byte(rank)}, 4096)
		got := make([]byte, 4096)
		next := (rank + 1) % n
		prev := (rank + n - 1) % n
		h := c.Irecv(th, prev, 0, got)
		c.Send(th, next, 0, msg)
		h.Wait(th)
		if got[0] == byte(prev) && got[4095] == byte(prev) {
			verified++
		}
	})
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	if verified != n {
		t.Fatalf("%d ranks verified", verified)
	}
}

func TestJobDeadlockDetection(t *testing.T) {
	j := mpichq.NewJob(2, nil)
	j.Launch(func(rank int, th *simtime.Thread, c *mpichq.Comm) {
		if rank == 0 {
			c.Recv(th, 1, 0, make([]byte, 4)) // never sent
		}
	})
	if err := j.Run(); err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestStaticPoolRejectsOutOfRange(t *testing.T) {
	j := mpichq.NewJob(2, nil)
	panicked := false
	j.Launch(func(rank int, th *simtime.Thread, c *mpichq.Comm) {
		if rank != 0 {
			return
		}
		defer func() { panicked = recover() != nil }()
		c.Send(th, 5, 0, []byte{1}) // outside the static pool
	})
	_ = j.Run()
	if !panicked {
		t.Fatal("send outside the static pool did not panic")
	}
}

func TestNICSideMatchingLeavesHostIdle(t *testing.T) {
	// Tport matches on the NIC: a receive posted into the NIC table and
	// satisfied by an incoming eager message must not consume host CPU
	// beyond the post/wait costs. Compare busy time with the wait time.
	j := mpichq.NewJob(2, nil)
	j.Launch(func(rank int, th *simtime.Thread, c *mpichq.Comm) {
		if rank == 0 {
			th.Proc().Sleep(500 * simtime.Microsecond)
			c.Send(th, 1, 0, []byte{1})
		} else {
			c.Recv(th, 0, 0, make([]byte, 4))
		}
	})
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	// Rank 1's host waited ~500us but must have been busy only for
	// microseconds (post + completion poll), since matching ran on the NIC.
	busy := j.Hosts[1].BusyTime().Micros()
	if busy > 20 {
		t.Fatalf("receiver host busy %.1fus during a NIC-matched receive", busy)
	}
	if j.Eps[1].Stats().NICMatches == 0 {
		t.Fatal("no NIC matches recorded")
	}
}

func TestEagerLimitBoundary(t *testing.T) {
	j := mpichq.NewJob(2, nil)
	lim := 0
	j.Launch(func(rank int, th *simtime.Thread, c *mpichq.Comm) {
		if rank == 0 {
			lim = j.Eps[0].EagerLimit()
			c.Send(th, 1, 0, make([]byte, lim))   // largest eager
			c.Send(th, 1, 1, make([]byte, lim+1)) // smallest rendezvous
		} else {
			l := j.Eps[1].EagerLimit()
			c.Recv(th, 0, 0, make([]byte, l))
			c.Recv(th, 0, 1, make([]byte, l+1))
		}
	})
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	st := j.Eps[0].Stats()
	if st.EagerTx != 1 || st.RndvTx != 1 {
		t.Fatalf("eager/rndv split at the boundary wrong: %+v", st)
	}
}
