// Package bufpool provides size-classed free lists for the transient
// []byte staging buffers the simulator's hot paths churn through: PML
// pack/unpack scratch, TCP segment and reassembly buffers, and Elan4 QDMA
// payload copies. It is the wall-clock analogue of the paper's §5
// preallocated 2 KB send-buffer pool: instead of allocating per message,
// buffers are recycled through power-of-two classes.
//
// Pools are deliberately NOT safe for concurrent use and take no locks:
// the discrete-event kernel runs exactly one simulated entity at a time,
// so each component (a PML stack, a PTL module, a NIC) owns its own pool.
// Buffers may migrate between pools (a sender's copy released into the
// receiver's pool); that is fine, a pool is just recycled storage.
//
// Determinism note: recycling changes only memory identity, never
// simulated time. Returned buffers have undefined contents; every caller
// fully overwrites the bytes it uses, as they already did with make().
package bufpool

const (
	minClassBits = 6  // smallest class: 64 B
	maxClassBits = 21 // largest class: 2 MiB; bigger requests fall through
	numClasses   = maxClassBits - minClassBits + 1
)

// Stats counts pool effectiveness for the observability surface.
type Stats struct {
	Gets   int64 // total Get calls
	Hits   int64 // Gets served from a free list
	Puts   int64 // buffers recycled
	Oversz int64 // requests above the largest class (plain make)
}

// Pool is a set of power-of-two size-classed free lists.
type Pool struct {
	free  [numClasses][][]byte
	stats Stats
}

// New returns an empty pool.
func New() *Pool { return &Pool{} }

// Stats returns a copy of the counters.
func (p *Pool) Stats() Stats { return p.stats }

// classFor returns the smallest class index whose capacity holds n, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	c := 0
	size := 1 << minClassBits
	for size < n {
		size <<= 1
		c++
	}
	if c >= numClasses {
		return -1
	}
	return c
}

// Get returns a buffer of length n with undefined contents. Zero-length
// requests return an empty non-nil slice.
func (p *Pool) Get(n int) []byte {
	if p == nil {
		return make([]byte, n)
	}
	p.stats.Gets++
	if n == 0 {
		return []byte{}
	}
	c := classFor(n)
	if c < 0 {
		p.stats.Oversz++
		return make([]byte, n)
	}
	if l := p.free[c]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[c] = l[:len(l)-1]
		p.stats.Hits++
		return b[:n]
	}
	return make([]byte, n, 1<<(minClassBits+c))
}

// Put recycles b. The caller must not touch b afterwards. Buffers whose
// capacity is not an exact class size (including oversize allocations and
// foreign slices) are dropped to the garbage collector.
func (p *Pool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	c := classFor(cap(b))
	if c < 0 || cap(b) != 1<<(minClassBits+c) {
		return
	}
	p.stats.Puts++
	p.free[c] = append(p.free[c], b[:0])
}
