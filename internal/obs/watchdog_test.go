// Watchdog tests: a seeded stall (a receive that can never match) must be
// detected and diagnosed, and on clean runs the watchdog must stay silent
// without moving virtual time.
package obs_test

import (
	"strings"
	"testing"

	"qsmpi/internal/cluster"
	"qsmpi/internal/datatype"
	"qsmpi/internal/obs"
	"qsmpi/internal/pml"
	"qsmpi/internal/ptlelan4"
	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

// TestWatchdogFiresOnSeededStall posts a receive on rank 1 that no send
// will ever match while rank 0 stays idle: the run deadlocks, and the
// watchdog must name the stalled rank with its queue state in the error.
func TestWatchdogFiresOnSeededStall(t *testing.T) {
	o := ptlelan4.BestOptions(ptlelan4.RDMARead)
	rec := trace.NewRecorder(0)
	wd := obs.NewWatchdog(simtime.Millisecond)
	c := cluster.New(cluster.Spec{Elan: &o, Progress: pml.Polling, Tracer: rec, Watchdog: wd}, 2)
	c.Launch(func(p *cluster.Proc) {
		if p.Rank == 1 {
			buf := make([]byte, 64)
			p.Stack.Recv(p.Th, 0, 99, 0, buf, datatype.Contiguous(64)).Wait(p.Th)
		}
	})
	err := c.Run()
	if err == nil {
		t.Fatal("seeded stall did not deadlock")
	}
	if !strings.Contains(err.Error(), "watchdog: rank 1 stalled") {
		t.Fatalf("deadlock error lacks watchdog diagnostic:\n%v", err)
	}
	stalls := wd.Stalls()
	if len(stalls) != 1 {
		t.Fatalf("stalls = %+v, want exactly one", stalls)
	}
	s := stalls[0]
	if s.Rank != 1 {
		t.Errorf("stalled rank = %d, want 1", s.Rank)
	}
	if s.Diag.PendingRecvs != 1 || s.Diag.PendingSends != 0 {
		t.Errorf("diag queues = %+v, want one pending recv", s.Diag)
	}
	if s.DetectedAt.Sub(s.LastProgress) < wd.Window() {
		t.Errorf("reported after only %v of silence, window is %v",
			s.DetectedAt.Sub(s.LastProgress), wd.Window())
	}
	// With a recorder attached the diagnostic names the rank's last event.
	if len(s.Diag.LastEvents) == 0 {
		t.Error("diag has no last-event context despite attached recorder")
	}
}

// TestWatchdogSilentOnCleanRuns attaches the watchdog to ordinary
// exchanges on every protocol path: no stalls may be reported, and the
// run's protocol timeline and final virtual time must be bit-identical to
// the same run without a watchdog — the zero-perturbation guarantee.
func TestWatchdogSilentOnCleanRuns(t *testing.T) {
	run := func(scheme ptlelan4.Scheme, size int, wd *obs.Watchdog) *trace.Recorder {
		o := ptlelan4.BestOptions(scheme)
		rec := trace.NewRecorder(0)
		c := cluster.New(cluster.Spec{Elan: &o, Progress: pml.Polling, Tracer: rec, Watchdog: wd}, 2)
		c.Launch(func(p *cluster.Proc) {
			dt := datatype.Contiguous(size)
			if p.Rank == 0 {
				p.Stack.Send(p.Th, 1, 0, 0, make([]byte, size), dt).Wait(p.Th)
			} else {
				p.Stack.Recv(p.Th, 0, 0, 0, make([]byte, size), dt).Wait(p.Th)
			}
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	last := func(rec *trace.Recorder) simtime.Time {
		evs := rec.Events()
		if len(evs) == 0 {
			t.Fatal("no events recorded")
		}
		return evs[len(evs)-1].At
	}
	for _, scheme := range []ptlelan4.Scheme{ptlelan4.RDMARead, ptlelan4.RDMAWrite} {
		for _, size := range []int{256, 4096, 65536} {
			wd := obs.NewWatchdog(0)
			watched := run(scheme, size, wd)
			plain := run(scheme, size, nil)
			if got := wd.Stalls(); len(got) != 0 {
				t.Errorf("scheme %v size %d: spurious stalls %+v", scheme, size, got)
			}
			if wd.Render() != "" {
				t.Errorf("scheme %v size %d: non-empty render on clean run", scheme, size)
			}
			if lw, lp := last(watched), last(plain); lw != lp {
				t.Errorf("scheme %v size %d: watchdog moved virtual time: %v vs %v",
					scheme, size, lw, lp)
			}
			if watched.Len() != plain.Len() {
				t.Errorf("scheme %v size %d: event count changed: %d vs %d",
					scheme, size, watched.Len(), plain.Len())
			}
		}
	}
}
