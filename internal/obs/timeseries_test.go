// Sampler unit tests: tick cadence and cancel-on-idle, ring eviction,
// late-registration zero-padding, matrix assembly, delta conversion and
// heatmap rendering — all on a bare kernel with synthetic probes.
package obs

import (
	"strings"
	"testing"

	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

// driveSampler binds a sampler to a fresh kernel with one synthetic
// rank probe (value = number of samples taken so far) and keeps the
// kernel alive for `alive`; the cancelable tick chain must then die
// with the run.
func driveSampler(t *testing.T, s *Sampler, alive simtime.Duration) {
	t.Helper()
	k := simtime.NewKernel()
	s.Bind(k)
	// A non-cancelable anchor keeps the run alive; the sampler's chain
	// is cancelable, so the kernel stops at the anchor, not one tick
	// after it.
	k.SchedFor(simtime.GlobalEntity).After(alive, "test:anchor", func() {})
	k.Run()
	if now := k.Now(); now != simtime.Time(alive) {
		t.Fatalf("kernel ran to %v, want %v — the sampler chain kept the run alive", now, alive)
	}
}

func TestSamplerTickCadence(t *testing.T) {
	s := NewSampler(10*simtime.Microsecond, 0)
	n := 0
	s.RegisterRank(0, 0, nil, func(now simtime.Time) [NumRankGauges]int64 {
		n++
		var v [NumRankGauges]int64
		v[GaugeDuty] = int64(n)
		return v
	})
	driveSampler(t, s, 95*simtime.Microsecond)
	// Ticks at 10us+1ps, 20us+1ps, ... 90us+1ps: nine ticks.
	if s.Ticks() != 9 || n != 9 {
		t.Fatalf("ticks = %d, probe calls = %d, want 9 each", s.Ticks(), n)
	}
	m := s.RankMatrix(GaugeDuty)
	if len(m.Times) != 9 || len(m.Rows) != 1 || len(m.Rows[0].Vals) != 9 {
		t.Fatalf("matrix shape %dx%d (row len %d), want 1x9", len(m.Rows), len(m.Times), len(m.Rows[0].Vals))
	}
	for i, v := range m.Rows[0].Vals {
		if v != int64(i+1) {
			t.Fatalf("column %d = %d, want %d", i, v, i+1)
		}
	}
}

func TestSamplerRingEviction(t *testing.T) {
	s := NewSampler(10*simtime.Microsecond, 4)
	n := int64(0)
	s.RegisterRank(0, 0, nil, func(now simtime.Time) [NumRankGauges]int64 {
		n++
		return [NumRankGauges]int64{n}
	})
	driveSampler(t, s, 95*simtime.Microsecond)
	m := s.RankMatrix(Gauge(0))
	if len(m.Times) != 4 || m.Evicted != 5 {
		t.Fatalf("retained %d ticks, evicted %d; want 4 retained, 5 evicted", len(m.Times), m.Evicted)
	}
	want := []int64{6, 7, 8, 9}
	for i, v := range m.Rows[0].Vals {
		if v != want[i] {
			t.Fatalf("ring column %d = %d, want %d (oldest evicted first)", i, v, want[i])
		}
	}
	if s.Ticks() != 9 {
		t.Fatalf("ticks = %d, want 9 (eviction must not hide tick count)", s.Ticks())
	}
}

func TestSamplerLateRegistrationPadding(t *testing.T) {
	s := NewSampler(10*simtime.Microsecond, 0)
	s.RegisterRank(0, 0, nil, func(now simtime.Time) [NumRankGauges]int64 {
		return [NumRankGauges]int64{1}
	})
	k := simtime.NewKernel()
	s.Bind(k)
	g := k.SchedFor(simtime.GlobalEntity)
	// Register rank 1 mid-run, after three ticks have already fired.
	g.After(35*simtime.Microsecond, "test:late-register", func() {
		s.RegisterRank(1, 0, nil, func(now simtime.Time) [NumRankGauges]int64 {
			return [NumRankGauges]int64{2}
		})
	})
	g.After(65*simtime.Microsecond, "test:anchor", func() {})
	k.Run()
	m := s.RankMatrix(Gauge(0))
	if len(m.Rows) != 2 || len(m.Times) != 6 {
		t.Fatalf("matrix shape %dx%d, want 2x6", len(m.Rows), len(m.Times))
	}
	late := m.Rows[1]
	if len(late.Vals) != 6 {
		t.Fatalf("late row has %d columns, want 6 (zero-padded)", len(late.Vals))
	}
	for i, v := range late.Vals {
		want := int64(0)
		if i >= 3 {
			want = 2
		}
		if v != want {
			t.Fatalf("late row column %d = %d, want %d", i, v, want)
		}
	}
}

func TestSamplerEmitsGaugeEvents(t *testing.T) {
	rec := trace.NewRecorder(0)
	s := NewSampler(10*simtime.Microsecond, 0)
	s.RegisterRank(3, 0, rec, func(now simtime.Time) [NumRankGauges]int64 {
		return [NumRankGauges]int64{7}
	})
	s.RegisterLink(0, 0, rec, func() [NumLinkGauges]int64 {
		return [NumLinkGauges]int64{11, 22, 33}
	})
	driveSampler(t, s, 15*simtime.Microsecond)
	var rank, link int
	for _, e := range rec.Events() {
		if e.Kind != trace.GaugeSample {
			t.Fatalf("non-gauge event from sampler: %+v", e)
		}
		switch e.Layer {
		case trace.LayerPML:
			rank++
			if e.Rank != 3 || e.Peer != -1 {
				t.Fatalf("rank sample mislabeled: %+v", e)
			}
		case trace.LayerFabric:
			link++
			if e.Rank != 0 || e.Peer != 0 {
				t.Fatalf("link sample mislabeled: %+v", e)
			}
		default:
			t.Fatalf("unexpected layer: %+v", e)
		}
		if e.Corr != 0 {
			t.Fatalf("gauge sample carries a correlator: %+v", e)
		}
	}
	if rank != int(NumRankGauges) || link != int(NumLinkGauges) {
		t.Fatalf("one tick emitted %d rank + %d link samples, want %d + %d",
			rank, link, NumRankGauges, NumLinkGauges)
	}
}

func TestMatrixDeltasAndHeatmap(t *testing.T) {
	m := Matrix{
		Gauge: "uplink-bytes",
		Times: []simtime.Time{10, 20, 30, 40},
		Rows: []Series{
			{Label: "port   0", Vals: []int64{100, 250, 250, 400}},
			{Label: "port   1", Vals: []int64{0, 0, 90, 90}},
		},
	}
	d := m.Deltas()
	if got := d.Rows[0].Vals; got[0] != 100 || got[1] != 150 || got[2] != 0 || got[3] != 150 {
		t.Fatalf("deltas row 0 = %v", got)
	}
	if got := d.Rows[1].Vals; got[2] != 90 {
		t.Fatalf("deltas row 1 = %v", got)
	}
	// Cumulative input must be untouched (Deltas returns a copy).
	if m.Rows[0].Vals[1] != 250 {
		t.Fatal("Deltas mutated its input")
	}
	h := d.Heatmap(80)
	if !strings.Contains(h, "uplink-bytes") || !strings.Contains(h, "port   0") {
		t.Fatalf("heatmap missing header or labels:\n%s", h)
	}
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("heatmap has %d lines, want header + 2 rows:\n%s", len(lines), h)
	}
	// Zero cells render blank; the max cell renders the hottest glyph.
	if !strings.Contains(lines[2], " ") || !strings.Contains(lines[1], "@") {
		t.Fatalf("heatmap glyph scale wrong:\n%s", h)
	}
	// Folding: 4 columns folded to 2 keep the per-bucket max.
	f := d.Heatmap(2)
	if !strings.Contains(f, "folded") {
		t.Fatalf("folded heatmap lacks fold marker:\n%s", f)
	}
}

// AnalyzeWaits on a hand-built stream: every classification rule firing
// from first principles, with exact durations.
func TestAnalyzeWaitsSynthetic(t *testing.T) {
	us := func(x int64) simtime.Time { return simtime.Time(x) * simtime.Time(simtime.Microsecond) }
	corr := trace.MsgID(0, 1)
	evs := []trace.Event{
		// Receiver posts at 5us (req 9), sender posts at 30us: late-sender 25us.
		{At: us(5), Rank: 1, Layer: trace.LayerPML, Kind: trace.RecvPosted, ReqID: 9, Peer: 0, Bytes: 64},
		{At: us(30), Rank: 0, Layer: trace.LayerPML, Kind: trace.SendPosted, ReqID: 1, Peer: 1, Bytes: 64, Corr: corr},
		// QDMA retried at 31us, deposited at 34us: nic-contention 3us.
		{At: us(31), Rank: 0, Layer: trace.LayerElan4, Kind: trace.QDMARetried, ReqID: 1, Peer: 1, Corr: corr},
		{At: us(34), Rank: 0, Layer: trace.LayerElan4, Kind: trace.QDMADeposited, ReqID: 1, Peer: 1, Corr: corr},
		// Arrives unexpected at 35us, matched at 47us: late-receiver 12us.
		{At: us(35), Rank: 1, Layer: trace.LayerPML, Kind: trace.FirstArrived, ReqID: 9, Peer: 0, Bytes: 64, Corr: corr},
		{At: us(35), Rank: 1, Layer: trace.LayerPML, Kind: trace.Unexpected, ReqID: 9, Peer: 0, Bytes: 64, Corr: corr},
		{At: us(47), Rank: 1, Layer: trace.LayerPML, Kind: trace.Matched, ReqID: 9, Peer: 0, Bytes: 64, Corr: corr},
		{At: us(48), Rank: 1, Layer: trace.LayerPML, Kind: trace.RecvCompleted, ReqID: 9, Peer: 0, Bytes: 64, Corr: corr},
		{At: us(48), Rank: 0, Layer: trace.LayerPML, Kind: trace.SendCompleted, ReqID: 1, Peer: 1, Bytes: 64, Corr: corr},
		// A 3-rank collective epoch: enters at 50/60/70us on the NIC path.
		{At: us(50), Rank: 0, Layer: trace.LayerPML, Kind: trace.CollEnter, ReqID: 100, Tag: trace.CollOpBarrier, Peer: 1, Corr: trace.MsgID(0, 100)},
		{At: us(60), Rank: 1, Layer: trace.LayerPML, Kind: trace.CollEnter, ReqID: 100, Tag: trace.CollOpBarrier, Peer: 1, Corr: trace.MsgID(1, 100)},
		{At: us(70), Rank: 2, Layer: trace.LayerPML, Kind: trace.CollEnter, ReqID: 100, Tag: trace.CollOpBarrier, Peer: 1, Corr: trace.MsgID(2, 100)},
		{At: us(75), Rank: 2, Layer: trace.LayerPML, Kind: trace.CollExit, ReqID: 100, Tag: trace.CollOpBarrier, Peer: 1, Corr: trace.MsgID(2, 100)},
	}
	p := AnalyzeWaits(evs)
	get := func(k WaitKind) []Wait {
		var out []Wait
		for _, w := range p.Waits {
			if w.Kind == k {
				out = append(out, w)
			}
		}
		return out
	}
	ls := get(WaitLateSender)
	if len(ls) != 1 || ls[0].Rank != 1 || ls[0].Peer != 0 || ls[0].Dur != 25*simtime.Microsecond {
		t.Fatalf("late-sender = %+v, want rank 1 on peer 0 for 25us", ls)
	}
	lr := get(WaitLateReceiver)
	if len(lr) != 1 || lr[0].Rank != 0 || lr[0].Peer != 1 || lr[0].Dur != 12*simtime.Microsecond {
		t.Fatalf("late-receiver = %+v, want rank 0 on peer 1 for 12us", lr)
	}
	nc := get(WaitNIC)
	if len(nc) != 1 || nc[0].Rank != 0 || nc[0].Dur != 3*simtime.Microsecond {
		t.Fatalf("nic-contention = %+v, want rank 0 for 3us", nc)
	}
	wb := get(WaitBarrier)
	if len(wb) != 2 {
		t.Fatalf("barrier waits = %+v, want 2 (ranks 0 and 1)", wb)
	}
	if wb[0].Rank != 0 || wb[0].Dur != 20*simtime.Microsecond ||
		wb[1].Rank != 1 || wb[1].Dur != 10*simtime.Microsecond {
		t.Fatalf("barrier waits = %+v, want rank 0 for 20us and rank 1 for 10us", wb)
	}
	if len(p.Epochs) != 1 {
		t.Fatalf("epochs = %+v, want one", p.Epochs)
	}
	ep := p.Epochs[0]
	if !ep.NIC || ep.Op != trace.CollOpBarrier || len(ep.Ranks) != 3 || ep.MaxUS != 20 {
		t.Fatalf("epoch = %+v, want NIC barrier of 3 ranks with 20us max skew", ep)
	}
	stats := p.SkewStats()
	if len(stats) != 1 || stats[0].Samples != 3 || !stats[0].NIC {
		t.Fatalf("skew stats = %+v", stats)
	}
	// 0us, 10us, 20us skews land in buckets <1, <16, <32.
	if stats[0].Buckets[0] != 1 || stats[0].Buckets[4] != 1 || stats[0].Buckets[5] != 1 {
		t.Fatalf("skew buckets = %v", stats[0].Buckets)
	}
	out := p.Render()
	for _, want := range []string{"late-sender", "wait-at-barrier", "arrival skew", "barrier", "nic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
