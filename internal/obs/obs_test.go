package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

func TestRegistrySnapshotSortsAndSumsDuplicates(t *testing.T) {
	r := New()
	r.Collect(func(emit EmitFn) {
		emit("elan4", "qdmas", 1, 3)
		emit("elan4", "qdmas", 0, 2)
	})
	// A second rail reporting under the same keys must merge, not shadow.
	r.Collect(func(emit EmitFn) {
		emit("elan4", "qdmas", 0, 5)
		emit("fabric", "pkts", -1, 9)
	})
	s := r.Snapshot()
	if got := s.Get("elan4", "qdmas", 0); got != 7 {
		t.Errorf("duplicate keys not summed: got %v, want 7", got)
	}
	if got := s.Total("elan4", "qdmas"); got != 10 {
		t.Errorf("Total = %v, want 10", got)
	}
	// Sorted by (layer, name, rank), with rank -1 ahead of rank 0.
	var keys []string
	for _, x := range s.Samples {
		keys = append(keys, x.Layer+"/"+x.Name)
	}
	want := []string{"elan4/qdmas", "elan4/qdmas", "fabric/pkts"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("sample order %v", keys)
		}
	}
	if s.Samples[0].Rank != 0 || s.Samples[1].Rank != 1 {
		t.Fatalf("rank order: %+v", s.Samples[:2])
	}
}

func TestSnapshotDiffOmitsZeroDeltas(t *testing.T) {
	var v float64 = 1
	r := New()
	r.Collect(func(emit EmitFn) {
		emit("pml", "sends", 0, v)
		emit("pml", "recvs", 0, 4)
	})
	before := r.Snapshot()
	v = 6
	d := r.Snapshot().Diff(before)
	if len(d.Samples) != 1 {
		t.Fatalf("diff = %+v, want only the changed sample", d.Samples)
	}
	if d.Samples[0].Name != "sends" || d.Samples[0].Value != 5 {
		t.Fatalf("diff sample = %+v", d.Samples[0])
	}
}

func TestSnapshotDiffEmitsNegativeDeltaForVanishedKeys(t *testing.T) {
	// Regression: a key present in prev but absent from the new snapshot
	// must appear as a negative delta, not silently vanish — e.g. a
	// histogram bucket that emptied because the component was replaced.
	emitGone := true
	r := New()
	r.Collect(func(emit EmitFn) {
		emit("pml", "sends", 0, 3)
		if emitGone {
			emit("ptl", "fin_tx", 1, 8)
		}
	})
	before := r.Snapshot()
	emitGone = false
	d := r.Snapshot().Diff(before)
	if len(d.Samples) != 1 {
		t.Fatalf("diff = %+v, want one negative sample", d.Samples)
	}
	got := d.Samples[0]
	if got.Layer != "ptl" || got.Name != "fin_tx" || got.Rank != 1 || got.Value != -8 {
		t.Fatalf("vanished key diff = %+v, want ptl/fin_tx/1 = -8", got)
	}
	// And the output stays sorted when both directions contribute.
	emitGone = true
	after := r.Snapshot()
	d = before.Diff(after) // same content: empty diff
	if len(d.Samples) != 0 {
		t.Fatalf("self-diff = %+v", d.Samples)
	}
}

func TestSnapshotGetFindsEverySample(t *testing.T) {
	r := New()
	r.Collect(func(emit EmitFn) {
		for rank := -1; rank < 6; rank++ {
			emit("pml", "sends", rank, float64(rank)+10)
			emit("elan4", "qdmas", rank, float64(rank)+20)
		}
	})
	s := r.Snapshot()
	for rank := -1; rank < 6; rank++ {
		if got := s.Get("pml", "sends", rank); got != float64(rank)+10 {
			t.Errorf("Get(pml, sends, %d) = %v", rank, got)
		}
		if got := s.Get("elan4", "qdmas", rank); got != float64(rank)+20 {
			t.Errorf("Get(elan4, qdmas, %d) = %v", rank, got)
		}
	}
	if got := s.Get("pml", "sends", 99); got != 0 {
		t.Errorf("absent rank = %v, want 0", got)
	}
	if got := s.Get("zzz", "nope", 0); got != 0 {
		t.Errorf("absent key = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("pml", "send_latency", 2)
	h.Observe(simtime.Micros(0.5)) // le_1us
	h.Observe(simtime.Micros(3))   // le_4us
	h.Observe(simtime.Micros(3.5)) // le_4us
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got < 2.3 || got > 2.4 {
		t.Fatalf("Mean = %v", got)
	}
	s := r.Snapshot()
	if got := s.Get("pml", "send_latency.count", 2); got != 3 {
		t.Errorf("count sample = %v", got)
	}
	if got := s.Get("pml", "send_latency.le_4us", 2); got != 2 {
		t.Errorf("le_4us bucket = %v", got)
	}
	if got := s.Get("pml", "send_latency.le_1us", 2); got != 1 {
		t.Errorf("le_1us bucket = %v", got)
	}
	// An overflow observation lands in le_inf.
	h.Observe(simtime.Micros(1e6))
	if got := r.Snapshot().Get("pml", "send_latency.le_inf", 2); got != 1 {
		t.Errorf("le_inf bucket = %v", got)
	}
}

func TestEmptyHistogramEmitsNothing(t *testing.T) {
	r := New()
	r.Histogram("pml", "recv_latency", 0)
	if s := r.Snapshot(); len(s.Samples) != 0 {
		t.Fatalf("empty histogram emitted %+v", s.Samples)
	}
}

func TestRenderFormatsRanksAndValues(t *testing.T) {
	r := New()
	r.Collect(func(emit EmitFn) {
		emit("fabric", "pkts", -1, 12)
		emit("pml", "mean_us", 0, 1.5)
	})
	out := r.Snapshot().Render()
	if !strings.Contains(out, "layer") || !strings.Contains(out, "metric") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows:\n%s", out)
	}
	if !strings.Contains(lines[1], " - ") || !strings.Contains(lines[1], "12") {
		t.Errorf("global rank not rendered as '-': %q", lines[1])
	}
	if !strings.Contains(lines[2], "1.500") {
		t.Errorf("float not rendered with decimals: %q", lines[2])
	}
}

// perfetto returns the decoded trace-event file for hand-built events.
func perfetto(t *testing.T, events []trace.Event) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	return doc
}

func TestWritePerfettoPairsSpans(t *testing.T) {
	doc := perfetto(t, []trace.Event{
		{At: simtime.Time(simtime.Micros(10)), Rank: 0, Layer: trace.LayerPML,
			Kind: trace.SendPosted, ReqID: 1, Peer: 1, Bytes: 64},
		{At: simtime.Time(simtime.Micros(25)), Rank: 0, Layer: trace.LayerPML,
			Kind: trace.SendCompleted, ReqID: 1, Peer: 1, Bytes: 64},
	})
	evs := doc["traceEvents"].([]any)
	var span map[string]any
	for _, e := range evs {
		m := e.(map[string]any)
		if m["ph"] == "X" {
			span = m
		}
	}
	if span == nil {
		t.Fatalf("no X span emitted: %v", evs)
	}
	if span["name"] != "send" {
		t.Errorf("span name = %v", span["name"])
	}
	if ts, dur := span["ts"].(float64), span["dur"].(float64); ts != 10 || dur != 15 {
		t.Errorf("span ts=%v dur=%v, want 10/15", ts, dur)
	}
}

func TestWritePerfettoDanglingOpenBecomesInstant(t *testing.T) {
	doc := perfetto(t, []trace.Event{
		{At: simtime.Time(simtime.Micros(5)), Rank: 1, Layer: trace.LayerElan4,
			Kind: trace.QDMAIssued, ReqID: 7},
	})
	evs := doc["traceEvents"].([]any)
	sawInstant := false
	for _, e := range evs {
		m := e.(map[string]any)
		switch m["ph"] {
		case "X":
			t.Fatalf("dangling open paired into a span: %v", m)
		case "i":
			sawInstant = true
		}
	}
	if !sawInstant {
		t.Fatal("dangling open lost entirely")
	}
}

func TestWritePerfettoFromPreservesDroppedCount(t *testing.T) {
	rec := trace.NewRecorder(2)
	for i := 0; i < 7; i++ {
		rec.Record(trace.Event{At: simtime.Time(simtime.Micros(float64(i))),
			Rank: 0, Layer: trace.LayerFabric, Kind: trace.PktSent})
	}
	var buf bytes.Buffer
	if err := WritePerfettoFrom(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var droppedMeta map[string]any
	for _, e := range doc["traceEvents"].([]any) {
		m := e.(map[string]any)
		if m["ph"] == "M" && m["name"] == "dropped_events" {
			droppedMeta = m
		}
	}
	if droppedMeta == nil {
		t.Fatalf("dropped-event accounting lost in export:\n%s", buf.String())
	}
	if got := droppedMeta["args"].(map[string]any)["dropped"].(float64); got != 5 {
		t.Fatalf("dropped = %v, want 5", got)
	}

	// No truncation → no metadata record.
	clean := trace.NewRecorder(0)
	clean.Record(trace.Event{Rank: 0, Layer: trace.LayerPML, Kind: trace.SendPosted, ReqID: 1})
	buf.Reset()
	if err := WritePerfettoFrom(&buf, clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "dropped_events") {
		t.Fatalf("dropped_events emitted with nothing dropped:\n%s", buf.String())
	}
}

func TestWritePerfettoMetadata(t *testing.T) {
	doc := perfetto(t, []trace.Event{
		{At: simtime.Time(simtime.Micros(1)), Rank: 0, Layer: trace.LayerFabric, Kind: trace.PktSent},
		{At: simtime.Time(simtime.Micros(2)), Rank: 1, Layer: trace.LayerPML, Kind: trace.RecvPosted, ReqID: 1},
	})
	if doc["displayTimeUnit"] != "ns" {
		t.Errorf("displayTimeUnit = %v", doc["displayTimeUnit"])
	}
	procs := map[float64]string{}
	threads := map[string]bool{}
	for _, e := range doc["traceEvents"].([]any) {
		m := e.(map[string]any)
		if m["ph"] != "M" {
			continue
		}
		name := m["args"].(map[string]any)["name"].(string)
		switch m["name"] {
		case "process_name":
			procs[m["pid"].(float64)] = name
		case "thread_name":
			threads[name] = true
		}
	}
	if procs[0] != "rank 0" || procs[1] != "rank 1" {
		t.Errorf("process metadata = %v", procs)
	}
	if !threads["fabric"] || !threads["pml"] {
		t.Errorf("thread metadata = %v", threads)
	}
}

// TestWritePerfettoCounterTracks validates the derived "C" counter
// tracks: PML request posts/completions step the per-rank pml-inflight
// queue-depth counter (tport-layer lifecycle events are excluded), NBC
// schedules pair into "nbc" X spans, and ProgressDuty samples land on
// the progress-duty track with their per-mille value.
func TestWritePerfettoCounterTracks(t *testing.T) {
	us := func(v float64) simtime.Time { return simtime.Time(simtime.Micros(v)) }
	doc := perfetto(t, []trace.Event{
		{At: us(1), Rank: 0, Layer: trace.LayerPML, Kind: trace.SendPosted, ReqID: 1},
		{At: us(2), Rank: 0, Layer: trace.LayerPML, Kind: trace.RecvPosted, ReqID: 2},
		{At: us(3), Rank: 0, Layer: trace.LayerTport, Kind: trace.SendPosted, ReqID: 9},
		{At: us(4), Rank: 0, Layer: trace.LayerPML, Kind: trace.NBCPosted, ReqID: 5},
		{At: us(5), Rank: 0, Layer: trace.LayerPML, Kind: trace.SendCompleted, ReqID: 1},
		{At: us(6), Rank: 0, Layer: trace.LayerPML, Kind: trace.RecvCompleted, ReqID: 2},
		{At: us(7), Rank: 0, Layer: trace.LayerPML, Kind: trace.NBCCompleted, ReqID: 5},
		{At: us(7), Rank: 0, Layer: trace.LayerPML, Kind: trace.ProgressDuty, Bytes: 250},
	})
	var inflight []float64
	var duty []float64
	nbcSpan := false
	for _, e := range doc["traceEvents"].([]any) {
		m := e.(map[string]any)
		switch {
		case m["ph"] == "C" && m["name"] == "pml-inflight":
			inflight = append(inflight, m["args"].(map[string]any)["inflight"].(float64))
		case m["ph"] == "C" && m["name"] == "progress-duty":
			duty = append(duty, m["args"].(map[string]any)["permille"].(float64))
		case m["ph"] == "X" && m["name"] == "nbc":
			nbcSpan = true
		}
	}
	want := []float64{1, 2, 1, 0}
	if len(inflight) != len(want) {
		t.Fatalf("pml-inflight samples = %v, want %v (tport post must not count)", inflight, want)
	}
	for i := range want {
		if inflight[i] != want[i] {
			t.Errorf("pml-inflight[%d] = %v, want %v", i, inflight[i], want[i])
		}
	}
	if len(duty) != 1 || duty[0] != 250 {
		t.Errorf("progress-duty samples = %v, want [250]", duty)
	}
	if !nbcSpan {
		t.Error("NBCPosted/NBCCompleted did not pair into an nbc span")
	}
}
