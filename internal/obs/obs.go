// Package obs is the unified observability subsystem: a metrics registry
// (counters, gauges and fixed-bucket latency histograms keyed by
// layer/name/rank) that every layer of the stack reports into, and a
// Chrome trace-event exporter (perfetto.go) for the cross-layer event
// stream recorded by internal/trace.
//
// The registry is pull-based: layers keep their existing cheap counters
// and a Collector closure snapshots them on demand, so the hot paths pay
// nothing when nobody is looking. Histograms are the one push-based
// surface — an Observe is a couple of integer increments — and layers
// hold nil histogram pointers unless a registry was attached, so the
// disabled cost is a single nil check. Both rules together are what keeps
// figure output byte-identical with observability compiled in.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"qsmpi/internal/simtime"
)

// Sample is one observed metric value. Rank is the owning process's rank,
// or -1 for cluster-global metrics.
type Sample struct {
	Layer string
	Name  string
	Rank  int
	Value float64
}

// sampleKey identifies a sample for map lookup and ordering. A plain
// comparable struct: building one is free, unlike the formatted string key
// it replaced, which dominated Snapshot cost on wide clusters.
type sampleKey struct {
	layer, name string
	rank        int
}

func (s Sample) key() sampleKey {
	return sampleKey{layer: s.Layer, name: s.Name, rank: s.Rank}
}

// less orders keys by (layer, name, rank); rank -1 (cluster-global)
// sorts before every real rank.
func (a sampleKey) less(b sampleKey) bool {
	if a.layer != b.layer {
		return a.layer < b.layer
	}
	if a.name != b.name {
		return a.name < b.name
	}
	return a.rank < b.rank
}

// EmitFn receives samples from a Collector.
type EmitFn func(layer, name string, rank int, value float64)

// Collector snapshots one component's counters into samples. Collectors
// run only inside Registry.Snapshot, never on a communication path.
type Collector func(emit EmitFn)

// Registry is the metric surface of one simulation: a set of collectors
// (pull) plus the histograms handed out to layers (push).
type Registry struct {
	collectors []Collector
	hists      []*Histogram
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Collect registers a collector.
func (r *Registry) Collect(c Collector) { r.collectors = append(r.collectors, c) }

// Snapshot runs every collector and folds in the histograms, returning
// the samples sorted by (layer, name, rank). Duplicate keys are summed,
// so per-rail components may emit under one rank.
type Snapshot struct {
	Samples []Sample
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	acc := make(map[sampleKey]Sample)
	emit := func(layer, name string, rank int, value float64) {
		s := Sample{Layer: layer, Name: name, Rank: rank, Value: value}
		k := s.key()
		if prev, ok := acc[k]; ok {
			prev.Value += value
			acc[k] = prev
			return
		}
		acc[k] = s
	}
	for _, c := range r.collectors {
		c(emit)
	}
	for _, h := range r.hists {
		h.emit(emit)
	}
	out := Snapshot{Samples: make([]Sample, 0, len(acc))}
	for _, s := range acc {
		out.Samples = append(out.Samples, s)
	}
	sort.Slice(out.Samples, func(i, j int) bool {
		return out.Samples[i].key().less(out.Samples[j].key())
	})
	return out
}

// Get returns the value of one metric, or 0 if absent. Samples are sorted
// by (layer, name, rank), so this is a binary search.
func (s Snapshot) Get(layer, name string, rank int) float64 {
	want := sampleKey{layer: layer, name: name, rank: rank}
	i := sort.Search(len(s.Samples), func(i int) bool {
		return !s.Samples[i].key().less(want)
	})
	if i < len(s.Samples) && s.Samples[i].key() == want {
		return s.Samples[i].Value
	}
	return 0
}

// Total sums a metric across ranks.
func (s Snapshot) Total(layer, name string) float64 {
	var v float64
	for _, x := range s.Samples {
		if x.Layer == layer && x.Name == name {
			v += x.Value
		}
	}
	return v
}

// Diff returns s minus prev, sample by sample (keys missing from either
// side count as zero there, so a metric present only in prev yields a
// negative delta rather than vanishing). Samples whose delta is zero are
// omitted, which makes Diff the natural "what did this phase do" view
// between two snapshots of the same registry.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	old := make(map[sampleKey]float64, len(prev.Samples))
	for _, x := range prev.Samples {
		old[x.key()] = x.Value
	}
	var out Snapshot
	for _, x := range s.Samples {
		k := x.key()
		d := x.Value - old[k]
		delete(old, k)
		if d == 0 {
			continue
		}
		x.Value = d
		out.Samples = append(out.Samples, x)
	}
	// Whatever is left in old appeared only in prev: emit the negative.
	for _, x := range prev.Samples {
		v, only := old[x.key()]
		if !only || v == 0 {
			continue
		}
		x.Value = -v
		out.Samples = append(out.Samples, x)
	}
	sort.Slice(out.Samples, func(i, j int) bool {
		return out.Samples[i].key().less(out.Samples[j].key())
	})
	return out
}

// Render formats the snapshot as an aligned table grouped by layer.
func (s Snapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-28s %5s %14s\n", "layer", "metric", "rank", "value")
	for _, x := range s.Samples {
		rank := fmt.Sprintf("%d", x.Rank)
		if x.Rank < 0 {
			rank = "-"
		}
		if x.Value == float64(int64(x.Value)) {
			fmt.Fprintf(&b, "%-8s %-28s %5s %14d\n", x.Layer, x.Name, rank, int64(x.Value))
		} else {
			fmt.Fprintf(&b, "%-8s %-28s %5s %14.3f\n", x.Layer, x.Name, rank, x.Value)
		}
	}
	return b.String()
}

// ---- histograms ----

// histBuckets are the fixed latency bucket upper bounds in microseconds
// (powers of two from 1us to 64ms, plus overflow). Fixed bounds keep
// snapshots comparable across runs and layers.
var histBuckets = [17]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Histogram is a fixed-bucket latency histogram. Observe is cheap enough
// for completion paths: a comparison loop over 17 bounds and three adds.
type Histogram struct {
	layer, name string
	rank        int
	counts      [len(histBuckets) + 1]int64
	n           int64
	sumUS       float64
}

// Histogram creates (and registers) a histogram keyed layer/name/rank.
func (r *Registry) Histogram(layer, name string, rank int) *Histogram {
	h := &Histogram{layer: layer, name: name, rank: rank}
	r.hists = append(r.hists, h)
	return h
}

// Observe records one latency.
func (h *Histogram) Observe(d simtime.Duration) {
	us := d.Micros()
	i := 0
	for i < len(histBuckets) && us > histBuckets[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sumUS += us
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the mean observed latency in microseconds.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sumUS / float64(h.n)
}

// emit folds the histogram into a snapshot: count, mean, and one sample
// per non-empty bucket (named le_<bound>us / le_inf).
func (h *Histogram) emit(emit EmitFn) {
	if h.n == 0 {
		return
	}
	emit(h.layer, h.name+".count", h.rank, float64(h.n))
	emit(h.layer, h.name+".mean_us", h.rank, h.Mean())
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		var bn string
		if i < len(histBuckets) {
			bn = fmt.Sprintf("%s.le_%gus", h.name, histBuckets[i])
		} else {
			bn = h.name + ".le_inf"
		}
		emit(h.layer, bn, h.rank, float64(c))
	}
}
