// Chrome trace-event JSON export of the cross-layer event stream, in the
// format Perfetto and chrome://tracing load directly. The mapping from
// the simulator's virtual time:
//
//   - pid  = MPI rank (one Perfetto "process" per rank)
//   - tid  = layer (one track per rank×layer: pml, ptl, elan4, fabric…)
//   - ts   = virtual microseconds since time zero (float, ps precision)
//   - "X" complete events for paired lifetimes — send-posted→send-completed
//     and recv-posted→recv-completed on the PML track, DMA issued→completed
//     on the elan4 track — paired by (rank, layer, ReqID)
//   - "i" instant events for everything unpaired (matching, control
//     traffic, deposits, packets)
//   - "C" counter events for the derived per-rank counter tracks:
//     "pml-inflight" (outstanding PML requests, stepped on every
//     post/complete — the request-queue depth over time) and
//     "progress-duty" (the progress engine's cumulative duty cycle in
//     per-mille, from ProgressDuty samples); sampler GaugeSample events
//     become one counter track per gauge — per-rank queue depths and
//     duty on the rank's process, per-link utilization (cumulative
//     uplink packets/bytes) on synthetic "link port N" processes keyed
//     off the fabric layer, one thread per rail
//   - "M" metadata events naming each process/thread
//
// Virtual time is deterministic, so the exported JSON is byte-identical
// across runs of the same scenario.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"qsmpi/internal/trace"
)

// perfEvent is one Chrome trace-event object. Dur and Args are omitted
// where meaningless so instants stay compact.
type perfEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type perfFile struct {
	TraceEvents     []perfEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// spanPairs maps a span-opening kind to its closing kind. Events of these
// kinds become "X" complete slices; everything else is an instant.
var spanPairs = map[trace.Kind]trace.Kind{
	trace.SendPosted:      trace.SendCompleted,
	trace.RecvPosted:      trace.RecvCompleted,
	trace.QDMAIssued:      trace.DMACompleted,
	trace.RDMAWriteIssued: trace.DMACompleted,
	trace.RDMAReadIssued:  trace.DMACompleted,
	trace.NBCPosted:       trace.NBCCompleted,
}

var spanNames = map[trace.Kind]string{
	trace.SendPosted:      "send",
	trace.RecvPosted:      "recv",
	trace.QDMAIssued:      "qdma",
	trace.RDMAWriteIssued: "rdma-write",
	trace.RDMAReadIssued:  "rdma-read",
	trace.NBCPosted:       "nbc",
}

func isSpanClose(k trace.Kind) bool {
	return k == trace.SendCompleted || k == trace.RecvCompleted ||
		k == trace.DMACompleted || k == trace.NBCCompleted
}

// inflightDelta maps PML request lifecycle kinds to their effect on the
// per-rank outstanding-request counter track.
func inflightDelta(k trace.Kind) (int, bool) {
	switch k {
	case trace.SendPosted, trace.RecvPosted:
		return 1, true
	case trace.SendCompleted, trace.RecvCompleted:
		return -1, true
	}
	return 0, false
}

// WritePerfettoFrom writes a recorder's events as Chrome trace-event
// JSON. Unlike WritePerfetto it also preserves the recorder's
// dropped-event count (events discarded once the recorder's limit was
// hit): when non-zero, a "dropped_events" metadata record is emitted so
// the truncation is visible in the exported file, not silently lost.
func WritePerfettoFrom(w io.Writer, rec *trace.Recorder) error {
	return writePerfetto(w, rec.Events(), rec.Dropped())
}

// WritePerfetto writes the recorded events as Chrome trace-event JSON.
func WritePerfetto(w io.Writer, events []trace.Event) error {
	return writePerfetto(w, events, 0)
}

func writePerfetto(w io.Writer, events []trace.Event, dropped int64) error {
	evs := append([]trace.Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	type spanKey struct {
		rank  int
		layer trace.Layer
		kind  trace.Kind // closing kind
		req   uint64
	}
	open := make(map[spanKey]trace.Event)

	var out []perfEvent
	seenTrack := make(map[[2]int]bool)
	seenProc := make(map[int]bool)
	track := func(rank int, layer trace.Layer) {
		if !seenProc[rank] {
			seenProc[rank] = true
			out = append(out, perfEvent{
				Name: "process_name", Ph: "M", PID: rank, TID: 0,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
			})
		}
		tk := [2]int{rank, int(layer)}
		if !seenTrack[tk] {
			seenTrack[tk] = true
			out = append(out, perfEvent{
				Name: "thread_name", Ph: "M", PID: rank, TID: int(layer),
				Args: map[string]any{"name": layer.String()},
			})
		}
	}

	args := func(e trace.Event) map[string]any {
		a := map[string]any{"req": e.ReqID, "peer": e.Peer}
		if e.Tag != 0 {
			a["tag"] = e.Tag
		}
		if e.Bytes != 0 {
			a["bytes"] = e.Bytes
		}
		return a
	}

	// Link counter tracks live on synthetic processes far above any rank
	// pid so port numbers never collide with rank numbers.
	const linkPIDBase = 1 << 20
	linkProc := make(map[int]bool)

	inflight := make(map[int]int)
	for _, e := range evs {
		// Sampler gauge snapshots become counter tracks: one per gauge on
		// the rank's process, one per link gauge on the port's process.
		if e.Kind == trace.GaugeSample {
			if e.Layer == trace.LayerFabric {
				pid := linkPIDBase + e.Rank
				if !linkProc[pid] {
					linkProc[pid] = true
					out = append(out, perfEvent{
						Name: "process_name", Ph: "M", PID: pid, TID: 0,
						Args: map[string]any{"name": fmt.Sprintf("link port %d", e.Rank)},
					})
				}
				out = append(out, perfEvent{
					Name: LinkGauge(e.Tag).String(), Ph: "C",
					TS: e.At.Micros(), PID: pid, TID: e.Peer,
					Args: map[string]any{"value": e.Bytes},
				})
			} else {
				track(e.Rank, e.Layer)
				out = append(out, perfEvent{
					Name: Gauge(e.Tag).String(), Ph: "C",
					TS: e.At.Micros(), PID: e.Rank, TID: 0,
					Args: map[string]any{"value": e.Bytes},
				})
			}
			continue
		}
		track(e.Rank, e.Layer)
		// Duty-cycle samples become points on a per-rank counter track.
		if e.Kind == trace.ProgressDuty {
			out = append(out, perfEvent{
				Name: "progress-duty", Ph: "C",
				TS: e.At.Micros(), PID: e.Rank, TID: 0,
				Args: map[string]any{"permille": e.Bytes},
			})
			continue
		}
		// Request posts/completions step the queue-depth counter track
		// (tport-layer lifecycle events are the NIC's view, not queue
		// occupancy, so only the PML layer feeds the counter).
		if d, ok := inflightDelta(e.Kind); ok && e.Layer == trace.LayerPML {
			inflight[e.Rank] += d
			out = append(out, perfEvent{
				Name: "pml-inflight", Ph: "C",
				TS: e.At.Micros(), PID: e.Rank, TID: 0,
				Args: map[string]any{"inflight": inflight[e.Rank]},
			})
		}
		if close, ok := spanPairs[e.Kind]; ok {
			// Span open: remember it; if an earlier open with the same key
			// never closed, flush it as an instant so nothing is lost.
			k := spanKey{e.Rank, e.Layer, close, e.ReqID}
			if prev, dup := open[k]; dup {
				out = append(out, perfEvent{
					Name: prev.Kind.String(), Ph: "i",
					TS: prev.At.Micros(), PID: prev.Rank, TID: int(prev.Layer),
					Args: args(prev),
				})
			}
			open[k] = e
			continue
		}
		if isSpanClose(e.Kind) {
			k := spanKey{e.Rank, e.Layer, e.Kind, e.ReqID}
			if start, ok := open[k]; ok {
				delete(open, k)
				dur := e.At.Sub(start.At).Micros()
				a := args(start)
				if e.Bytes != 0 {
					a["bytes"] = e.Bytes
				}
				out = append(out, perfEvent{
					Name: spanNames[start.Kind], Ph: "X",
					TS: start.At.Micros(), Dur: &dur,
					PID: e.Rank, TID: int(e.Layer), Args: a,
				})
				continue
			}
			// Close with no open: fall through to an instant.
		}
		out = append(out, perfEvent{
			Name: e.Kind.String(), Ph: "i",
			TS: e.At.Micros(), PID: e.Rank, TID: int(e.Layer),
			Args: args(e),
		})
	}

	// Unclosed spans (e.g. recorder limit hit mid-run) become instants.
	var dangling []trace.Event
	for _, s := range open {
		dangling = append(dangling, s)
	}
	// The comparator must be total: dangling is collected from a map, so
	// any tie left unbroken would surface map iteration order in the file.
	sort.SliceStable(dangling, func(i, j int) bool {
		if dangling[i].At != dangling[j].At {
			return dangling[i].At < dangling[j].At
		}
		if dangling[i].Rank != dangling[j].Rank {
			return dangling[i].Rank < dangling[j].Rank
		}
		if dangling[i].ReqID != dangling[j].ReqID {
			return dangling[i].ReqID < dangling[j].ReqID
		}
		if dangling[i].Layer != dangling[j].Layer {
			return dangling[i].Layer < dangling[j].Layer
		}
		return dangling[i].Kind < dangling[j].Kind
	})
	for _, s := range dangling {
		out = append(out, perfEvent{
			Name: s.Kind.String(), Ph: "i",
			TS: s.At.Micros(), PID: s.Rank, TID: int(s.Layer),
			Args: args(s),
		})
	}

	if dropped > 0 {
		out = append(out, perfEvent{
			Name: "dropped_events", Ph: "M", PID: 0, TID: 0,
			Args: map[string]any{"dropped": dropped},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(perfFile{TraceEvents: out, DisplayTimeUnit: "ns"})
}
