// Virtual-time progress watchdog: flags any rank whose request queues are
// non-empty but whose event stream has advanced no virtual time for a
// configurable window — the observable symptom of the completion-queue
// race of §5.3 and of every lost-wakeup bug in a progress engine. The
// watchdog is wired through cluster.Spec.Watchdog and the PML progress
// paths: each progress notification stamps the rank's last-advance time
// and (re)arms one kernel timer; when the timer fires, every registered
// rank that is still busy and has not advanced for a full window is dumped
// as a structured stall diagnostic.
//
// The watchdog reads simulation state but never adds virtual-time cost to
// any simulated entity, so attaching it cannot change a run's latencies —
// only the kernel's event count.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

// DefaultStallWindow is the stall threshold used when a Watchdog is built
// with window 0. The largest legitimate event-stream gap in the modelled
// configurations is ~1.1ms (one maximum-size RDMA crossing the wire), so
// ten milliseconds of virtual silence is unambiguous.
const DefaultStallWindow = 10 * simtime.Millisecond

// Probe is one rank's view into its request machinery, registered by the
// cluster at bringup. Busy reports whether any request is pending; Diag
// captures the stall diagnostic when the watchdog trips.
type Probe struct {
	Busy func() bool
	Diag func() StallDiag
}

// StallDiag is the structured state dump of one stalled rank.
type StallDiag struct {
	PendingSends    int
	PendingRecvs    int
	UnexpectedDepth int
	OutstandingDMA  int
	// LastEvents is the final trace event per layer for the rank, newest
	// first, when a recorder was attached; nil otherwise.
	LastEvents []LayerLast
}

// LayerLast is the most recent recorded event of one layer.
type LayerLast struct {
	Layer string
	Kind  string
	At    simtime.Time
}

// StallReport records one detected stall.
type StallReport struct {
	Rank         int
	LastProgress simtime.Time
	DetectedAt   simtime.Time
	Diag         StallDiag
}

// Render formats one report as an indented multi-line diagnostic.
func (r StallReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: rank %d stalled: no progress since %.3fus (detected at %.3fus, %.3fus of silence)\n",
		r.Rank, r.LastProgress.Micros(), r.DetectedAt.Micros(), r.DetectedAt.Sub(r.LastProgress).Micros())
	fmt.Fprintf(&b, "  pending: sends=%d recvs=%d unexpected=%d outstanding-dma=%d\n",
		r.Diag.PendingSends, r.Diag.PendingRecvs, r.Diag.UnexpectedDepth, r.Diag.OutstandingDMA)
	for _, le := range r.Diag.LastEvents {
		fmt.Fprintf(&b, "  last %-6s event: %-17s @ %.3fus\n", le.Layer, le.Kind, le.At.Micros())
	}
	return b.String()
}

// Watchdog monitors per-rank progress in virtual time. Create one with
// NewWatchdog, hand it to cluster.Spec.Watchdog, and read Stalls() after
// the run. All methods run inside the (cooperative) simulation, so no
// locking is needed.
type Watchdog struct {
	window simtime.Duration
	k      *simtime.Kernel
	rec    *trace.Recorder
	// par is true on a sharded kernel: progress notes only stamp their
	// rank's slot (any shard may note concurrently), and the tick runs as
	// a periodic cancel-on-idle coordinator timer instead of being armed
	// from the (possibly worker-shard) note path.
	par bool

	probes   map[int]Probe
	ranks    []int // registration order, kept sorted for determinism
	last     []simtime.Time // per-rank last-progress stamps
	reported map[int]bool
	armed    bool
	fired    []StallReport
}

// NewWatchdog returns a watchdog with the given stall window
// (0 = DefaultStallWindow).
func NewWatchdog(window simtime.Duration) *Watchdog {
	if window <= 0 {
		window = DefaultStallWindow
	}
	return &Watchdog{
		window:   window,
		probes:   make(map[int]Probe),
		reported: make(map[int]bool),
	}
}

// Window returns the configured stall threshold.
func (w *Watchdog) Window() simtime.Duration { return w.window }

// Bind attaches the watchdog to the simulation kernel (the cluster does
// this at construction) and, optionally, to the run's event recorder so
// stall diagnostics can include each layer's last event.
func (w *Watchdog) Bind(k *simtime.Kernel, rec *trace.Recorder) {
	w.k = k
	w.rec = rec
	if k.Sharded() > 0 && !w.par {
		w.par = true
		// Periodic coordinator tick, dropped when only cancel-on-idle
		// events remain so the watchdog never keeps a finished run alive.
		g := k.SchedFor(simtime.GlobalEntity)
		var arm func()
		arm = func() {
			g.AfterCancelable(w.window, "obs:watchdog", func() {
				w.tick()
				arm()
			})
		}
		arm()
	}
}

// Register installs one rank's probe. Re-registering a rank replaces its
// probe (process respawn under the same rank).
func (w *Watchdog) Register(rank int, p Probe) {
	if _, dup := w.probes[rank]; !dup {
		w.ranks = append(w.ranks, rank)
		sort.Ints(w.ranks)
	}
	if rank >= len(w.last) {
		nl := make([]simtime.Time, rank+1)
		copy(nl, w.last)
		w.last = nl
	}
	w.probes[rank] = p
}

// Note stamps rank's last-progress time, as seen on the caller's clock,
// and on a classic kernel arms the timer if idle. It is called from the
// PML's hot paths, so it must stay a couple of field touches; under a
// sharded kernel it writes only the rank's own slot, which is safe from
// the rank's shard because the coordinator reads the slots exclusively.
func (w *Watchdog) Note(rank int, now simtime.Time) {
	if rank < len(w.last) {
		w.last[rank] = now
	}
	if w.par {
		return
	}
	if !w.armed {
		w.armed = true
		w.k.After(w.window, "obs:watchdog", w.tick)
	}
}

// tick inspects every registered rank. A rank is stalled when its probe
// reports pending requests and no progress note for a full window; each
// stall is reported once. The timer rearms only while some rank is busy
// and nothing has been reported — once the run quiesces (or a stall is on
// record), the watchdog stops injecting events so the kernel can drain
// and its own deadlock detection can run.
func (w *Watchdog) tick() {
	now := w.k.Now()
	busy := false
	for _, rank := range w.ranks {
		p := w.probes[rank]
		if p.Busy == nil || !p.Busy() {
			continue
		}
		busy = true
		if now.Sub(w.last[rank]) >= w.window && !w.reported[rank] {
			w.reported[rank] = true
			rep := StallReport{Rank: rank, LastProgress: w.last[rank], DetectedAt: now}
			if p.Diag != nil {
				rep.Diag = p.Diag()
			}
			rep.Diag.LastEvents = w.lastEvents(rank)
			w.fired = append(w.fired, rep)
		}
	}
	if w.par {
		// The periodic cancel-on-idle chain owns rearming.
		return
	}
	if !busy || len(w.fired) > 0 {
		// Disarm; the next progress note (from a still-live rank) rearms.
		w.armed = false
		return
	}
	w.k.After(w.window, "obs:watchdog", w.tick)
}

// lastEvents scans the attached recorder for rank's final event per
// layer, newest first.
func (w *Watchdog) lastEvents(rank int) []LayerLast {
	if w.rec == nil {
		return nil
	}
	type lastEv struct {
		ev  trace.Event
		set bool
	}
	byLayer := make(map[trace.Layer]lastEv)
	for _, e := range w.rec.Events() {
		if e.Rank != rank {
			continue
		}
		le := byLayer[e.Layer]
		if !le.set || e.At >= le.ev.At {
			byLayer[e.Layer] = lastEv{ev: e, set: true}
		}
	}
	var out []LayerLast
	for _, le := range byLayer {
		out = append(out, LayerLast{Layer: le.ev.Layer.String(), Kind: le.ev.Kind.String(), At: le.ev.At})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At > out[j].At
		}
		return out[i].Layer < out[j].Layer
	})
	return out
}

// Stalls returns the recorded stall reports in detection order.
func (w *Watchdog) Stalls() []StallReport {
	return append([]StallReport(nil), w.fired...)
}

// Render formats every recorded stall; empty when none fired.
func (w *Watchdog) Render() string {
	var b strings.Builder
	for _, r := range w.fired {
		b.WriteString(r.Render())
	}
	return b.String()
}
