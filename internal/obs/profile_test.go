// Profiler tests: the telescoping invariant (phase durations sum exactly
// to end-to-end latency on every protocol path), path classification,
// flow accounting, critical-path ordering and rendering determinism.
package obs_test

import (
	"testing"

	"qsmpi/internal/cluster"
	"qsmpi/internal/experiments"
	"qsmpi/internal/mpichq"
	"qsmpi/internal/obs"
	"qsmpi/internal/pml"
	"qsmpi/internal/ptlelan4"
	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

// checkTelescope asserts the profiler's core invariant for every message:
// the phase durations sum to exactly End-Start, with no rounding slack —
// both are integer virtual-time ticks.
func checkTelescope(t *testing.T, p obs.Profile) {
	t.Helper()
	if len(p.Messages) == 0 {
		t.Fatal("no correlated messages reconstructed")
	}
	for _, m := range p.Messages {
		var sum simtime.Duration
		for _, ph := range m.Phases {
			if ph.Dur < 0 {
				t.Errorf("corr %#x: negative phase %s = %v", m.Corr, ph.Name, ph.Dur)
			}
			sum += ph.Dur
		}
		if sum != m.Latency() {
			t.Errorf("corr %#x (%s): phases sum to %v, latency is %v",
				m.Corr, m.Path, sum, m.Latency())
		}
		if m.End < m.Start {
			t.Errorf("corr %#x: End %v before Start %v", m.Corr, m.End, m.Start)
		}
	}
}

func TestPhaseSumsEqualLatencyAcrossPaths(t *testing.T) {
	cases := []struct {
		scheme ptlelan4.Scheme
		size   int
		path   string
	}{
		{ptlelan4.RDMARead, 256, "eager"},
		{ptlelan4.RDMAWrite, 256, "eager"},
		{ptlelan4.RDMARead, 4096, "rdma-read"},
		{ptlelan4.RDMARead, 65536, "rdma-read"},
		{ptlelan4.RDMAWrite, 4096, "rdma-write"},
		{ptlelan4.RDMAWrite, 65536, "rdma-write"},
	}
	for _, c := range cases {
		p := obs.Analyze(exchange(t, c.scheme, c.size).Events())
		checkTelescope(t, p)
		for _, m := range p.Messages {
			if m.Path != c.path {
				t.Errorf("scheme %v size %d: path %q, want %q", c.scheme, c.size, m.Path, c.path)
			}
			if m.Src != 0 || m.Dst != 1 {
				t.Errorf("scheme %v size %d: flow %d->%d, want 0->1", c.scheme, c.size, m.Src, m.Dst)
			}
			if m.Bytes != c.size {
				t.Errorf("scheme %v size %d: bytes %d", c.scheme, c.size, m.Bytes)
			}
		}
		if len(p.Paths) != 1 || p.Paths[0].Path != c.path {
			t.Errorf("scheme %v size %d: paths %+v", c.scheme, c.size, p.Paths)
		}
		if len(p.Flows) != 1 || p.Flows[0].Src != 0 || p.Flows[0].Dst != 1 {
			t.Errorf("scheme %v size %d: flows %+v", c.scheme, c.size, p.Flows)
		}
	}
}

// TestRendezvousPhaseSequence pins the phase names of the two rendezvous
// paths — the decomposition the paper's Fig. 9 per-layer cost analysis
// maps onto.
func TestRendezvousPhaseSequence(t *testing.T) {
	names := func(m obs.Message) []string {
		var out []string
		for _, ph := range m.Phases {
			out = append(out, ph.Name)
		}
		return out
	}
	check := func(scheme ptlelan4.Scheme, want []string) {
		t.Helper()
		p := obs.Analyze(exchange(t, scheme, 4096).Events())
		if len(p.Messages) != 1 {
			t.Fatalf("scheme %v: %d messages", scheme, len(p.Messages))
		}
		got := names(p.Messages[0])
		if len(got) != len(want) {
			t.Fatalf("scheme %v: phases %v, want %v", scheme, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("scheme %v: phases %v, want %v", scheme, got, want)
			}
		}
	}
	check(ptlelan4.RDMARead, []string{
		"sched", "dma-queue", "wire", "drain", "match",
		"handshake", "dma-queue", "body-dma", "fin-lag"})
	check(ptlelan4.RDMAWrite, []string{
		"sched", "dma-queue", "wire", "drain", "match",
		"handshake", "sched", "dma-queue", "body-dma", "fin-lag"})
}

// TestTportPathDecomposition covers the NIC-resident tag-matching
// transport: same telescoping invariant, "tport" classification.
func TestTportPathDecomposition(t *testing.T) {
	for _, size := range []int{64, 100000} {
		rec := trace.NewRecorder(0)
		j := mpichq.NewJob(2, nil)
		j.SetTracer(rec)
		j.Launch(func(rank int, th *simtime.Thread, c *mpichq.Comm) {
			buf := make([]byte, size)
			if rank == 0 {
				c.Send(th, 1, 7, buf)
				c.Recv(th, 1, 8, buf)
			} else {
				c.Recv(th, 0, 7, buf)
				c.Send(th, 0, 8, buf)
			}
		})
		if err := j.Run(); err != nil {
			t.Fatal(err)
		}
		p := obs.Analyze(rec.Events())
		checkTelescope(t, p)
		if len(p.Messages) != 2 {
			t.Fatalf("size %d: %d messages, want 2", size, len(p.Messages))
		}
		for _, m := range p.Messages {
			if m.Path != "tport" {
				t.Errorf("size %d: path %q, want tport", size, m.Path)
			}
			if m.Bytes != size {
				t.Errorf("size %d: bytes %d", size, m.Bytes)
			}
		}
		if p.Messages[0].Src != 0 || p.Messages[0].Dst != 1 ||
			p.Messages[1].Src != 1 || p.Messages[1].Dst != 0 {
			t.Errorf("size %d: flow order %+v", size, p.Messages)
		}
	}
}

// TestCriticalPathIsChronologicalDependencyChain runs a multi-iteration
// ping-pong and checks the walk: hops in time order, each finishing at or
// before the next starts, sharing an endpoint rank, ending at the run's
// latest-ending message.
func TestCriticalPathIsChronologicalDependencyChain(t *testing.T) {
	o := ptlelan4.BestOptions(ptlelan4.RDMARead)
	ob := experiments.ObservedPingPong(clusterSpec(o), 4096, 4, 0, 0)
	p := obs.Analyze(ob.Recorder.Events())
	checkTelescope(t, p)
	if len(p.Critical) < 2 {
		t.Fatalf("critical path has %d hops, want a chain", len(p.Critical))
	}
	for i := 1; i < len(p.Critical); i++ {
		prev, cur := p.Critical[i-1], p.Critical[i]
		if prev.End > cur.Start {
			t.Errorf("hop %d: ends %v after hop %d starts %v", i-1, prev.End, i, cur.Start)
		}
		if prev.Src != cur.Src && prev.Src != cur.Dst && prev.Dst != cur.Src && prev.Dst != cur.Dst {
			t.Errorf("hop %d (%d->%d) shares no rank with hop %d (%d->%d)",
				i-1, prev.Src, prev.Dst, i, cur.Src, cur.Dst)
		}
	}
	last := p.Critical[len(p.Critical)-1]
	for _, m := range p.Messages {
		if m.End > last.End {
			t.Errorf("critical path ends at %v but message %#x ends later at %v",
				last.End, m.Corr, m.End)
		}
	}
}

// TestProfileRenderingDeterministic: two identical runs must render
// byte-identical tables — the property that lets breakdown output be
// golden-tested and diffed across commits.
func TestProfileRenderingDeterministic(t *testing.T) {
	render := func() (string, string, string) {
		p := obs.Analyze(exchange(t, ptlelan4.RDMAWrite, 65536).Events())
		return p.RenderBreakdown(), p.RenderFlows(), p.RenderCritical()
	}
	b1, f1, c1 := render()
	b2, f2, c2 := render()
	if b1 != b2 || f1 != f2 || c1 != c2 {
		t.Fatalf("rendered profile differs across identical runs:\n--- breakdown A\n%s--- breakdown B\n%s", b1, b2)
	}
	if b1 == "" || f1 == "" || c1 == "" {
		t.Fatal("empty rendering")
	}
}

// TestAnalyzeIgnoresUncorrelatedEvents: raw fabric/NIC traffic without a
// correlator must not fabricate messages.
func TestAnalyzeIgnoresUncorrelatedEvents(t *testing.T) {
	p := obs.Analyze([]trace.Event{
		{At: simtime.Time(simtime.Micros(1)), Rank: 0, Layer: trace.LayerFabric, Kind: trace.PktSent},
		{At: simtime.Time(simtime.Micros(2)), Rank: 1, Layer: trace.LayerFabric, Kind: trace.PktDelivered},
	})
	if len(p.Messages) != 0 || len(p.Critical) != 0 {
		t.Fatalf("uncorrelated events produced %+v", p.Messages)
	}
	if got := p.RenderCritical(); got != "critical path: no correlated messages\n" {
		t.Fatalf("empty critical render = %q", got)
	}
}

// clusterSpec builds the standard 2-rank polling spec used by the
// experiment helpers.
func clusterSpec(o ptlelan4.Options) cluster.Spec {
	return cluster.Spec{Elan: &o, Progress: pml.Polling}
}
