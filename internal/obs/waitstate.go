// Wait-state attribution (DESIGN.md §8.4): a post-hoc analyzer in the
// critical-path profiler's vein that walks the correlated event stream
// and classifies every wait a rank experienced into the classic
// taxonomy — late-sender (a receive posted before its matching send),
// late-receiver (a message arriving unexpected and sitting unmatched),
// wait-at-barrier (early arrival at a collective epoch), and
// NIC-contention (QDMA retry stalls) — aggregated per rank, per peer
// pair and per collective epoch, with arrival-skew statistics at
// Barrier/Allreduce split by host software trees vs. NIC combine trees.
//
// Reconciliation with the PR-4 phase breakdowns holds by construction:
// a late-receiver wait is exactly the message's "match" phase
// (Matched − FirstArrived, gated on an Unexpected event), a NIC
//-contention wait lies inside its wire phase, so their sum never
// exceeds the message's end-to-end latency; a late-sender wait
// (SendPosted − RecvPosted) precedes the message's lifetime and is
// bounded by the receiver's post-to-match window. Like every analyzer
// here this runs after the simulation on a copy of the stream.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

// WaitKind classifies one attributed wait.
type WaitKind uint8

// The wait-state taxonomy.
const (
	WaitLateSender WaitKind = iota
	WaitLateReceiver
	WaitBarrier
	WaitNIC

	numWaitKinds
)

func (k WaitKind) String() string {
	switch k {
	case WaitLateSender:
		return "late-sender"
	case WaitLateReceiver:
		return "late-receiver"
	case WaitBarrier:
		return "wait-at-barrier"
	case WaitNIC:
		return "nic-contention"
	}
	return fmt.Sprintf("WaitKind(%d)", uint8(k))
}

// Wait is one classified wait interval.
type Wait struct {
	Kind WaitKind
	// Rank is the rank charged with waiting; Peer the partner it waited
	// on (the late sender, the late receiver, the retried QDMA's
	// destination; -1 for collective waits, where the partner is the
	// whole epoch).
	Rank int
	Peer int
	// Corr is the message correlator (point-to-point kinds); Epoch and
	// Op identify the collective (WaitBarrier), with NIC distinguishing
	// the combine-tree path.
	Corr  uint64
	Epoch uint64
	Op    int
	NIC   bool
	At    simtime.Time // when the wait began
	Dur   simtime.Duration
}

// RankWaits aggregates every wait charged to one rank.
type RankWaits struct {
	Rank   int
	Total  simtime.Duration
	ByKind [numWaitKinds]simtime.Duration
	Counts [numWaitKinds]int
}

// PairWaits aggregates the point-to-point waits of one (rank, peer)
// pair, directional: Rank waited on Peer.
type PairWaits struct {
	Rank, Peer int
	Total      simtime.Duration
	ByKind     [numWaitKinds]simtime.Duration
	Counts     [numWaitKinds]int
}

// CollEpoch is one collective epoch's arrival analysis: who entered
// when, and how much skew the last arrival imposed.
type CollEpoch struct {
	ID     uint64 // the CollEnter events' ReqID (comm id ≪ 22 | sequence)
	Op     int    // trace.CollOp code
	NIC    bool   // NIC combine tree vs host software tree
	Ranks  []int  // members seen, ascending
	First  simtime.Time
	Last   simtime.Time
	Exit   simtime.Time       // latest CollExit (zero when unrecorded)
	Skews  []simtime.Duration // per-rank arrival skew, Ranks order
	MaxUS  float64
	MeanUS float64
}

// WaitProfile is the result of AnalyzeWaits.
type WaitProfile struct {
	// Waits is every classified wait, ordered by (start, rank, kind).
	Waits []Wait
	// ByRank aggregates per charged rank, ascending.
	ByRank []RankWaits
	// ByPair aggregates the directional point-to-point pairs, ordered by
	// (rank, peer).
	ByPair []PairWaits
	// Epochs is every collective epoch with at least two recorded
	// members, in first-arrival order.
	Epochs []CollEpoch
	// Messages is how many correlated messages the walk covered.
	Messages int
}

// AnalyzeWaits classifies every wait in the event stream. It reuses the
// critical-path reconstruction (Analyze) for message identity, then
// joins receive-post times through (rank, request id) — RecvPosted
// events are uncorrelated; the Matched event names the request — and
// collective epochs through CollEnter/CollExit.
func AnalyzeWaits(events []trace.Event) WaitProfile {
	evs := append([]trace.Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	type rr struct {
		rank int
		req  uint64
	}
	recvPost := make(map[rr]simtime.Time)
	byCorr := make(map[uint64][]trace.Event)
	for _, e := range evs {
		if e.Kind == trace.RecvPosted {
			k := rr{e.Rank, e.ReqID}
			if _, ok := recvPost[k]; !ok {
				recvPost[k] = e.At
			}
		}
		if e.Corr != 0 {
			byCorr[e.Corr] = append(byCorr[e.Corr], e)
		}
	}

	prof := Analyze(evs)
	var p WaitProfile
	p.Messages = len(prof.Messages)
	for _, m := range prof.Messages {
		var sendPostAt, firstArrAt, matchedAt, retryAt, depositAt simtime.Time
		var matchedReq uint64
		var haveSend, haveFirst, haveMatch, haveRetry, haveDeposit, unexpected bool
		for _, e := range byCorr[m.Corr] {
			switch e.Kind {
			case trace.SendPosted:
				if !haveSend && e.Rank == m.Src {
					sendPostAt, haveSend = e.At, true
				}
			case trace.FirstArrived:
				if !haveFirst {
					firstArrAt, haveFirst = e.At, true
				}
			case trace.Unexpected:
				unexpected = true
			case trace.Matched:
				if !haveMatch {
					matchedAt, matchedReq, haveMatch = e.At, e.ReqID, true
				}
			case trace.QDMARetried:
				if !haveRetry {
					retryAt, haveRetry = e.At, true
				}
			case trace.QDMADeposited:
				if haveRetry && !haveDeposit && e.At >= retryAt {
					depositAt, haveDeposit = e.At, true
				}
			}
		}
		if haveSend && haveMatch {
			if post, ok := recvPost[rr{m.Dst, matchedReq}]; ok && sendPostAt > post {
				p.Waits = append(p.Waits, Wait{
					Kind: WaitLateSender, Rank: m.Dst, Peer: m.Src, Corr: m.Corr,
					At: post, Dur: sendPostAt.Sub(post),
				})
			}
		}
		if unexpected && haveFirst && haveMatch && matchedAt > firstArrAt {
			p.Waits = append(p.Waits, Wait{
				Kind: WaitLateReceiver, Rank: m.Src, Peer: m.Dst, Corr: m.Corr,
				At: firstArrAt, Dur: matchedAt.Sub(firstArrAt),
			})
		}
		if haveRetry && haveDeposit && depositAt > retryAt {
			p.Waits = append(p.Waits, Wait{
				Kind: WaitNIC, Rank: m.Src, Peer: m.Dst, Corr: m.Corr,
				At: retryAt, Dur: depositAt.Sub(retryAt),
			})
		}
	}

	p.Epochs = collectEpochs(evs)
	for _, ep := range p.Epochs {
		for i, rank := range ep.Ranks {
			if ep.Skews[i] <= 0 {
				continue
			}
			p.Waits = append(p.Waits, Wait{
				Kind: WaitBarrier, Rank: rank, Peer: -1,
				Epoch: ep.ID, Op: ep.Op, NIC: ep.NIC,
				At: ep.Last.Add(-ep.Skews[i]), Dur: ep.Skews[i],
			})
		}
	}

	sort.SliceStable(p.Waits, func(i, j int) bool {
		a, b := p.Waits[i], p.Waits[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Kind < b.Kind
	})
	p.ByRank = aggregateRankWaits(p.Waits)
	p.ByPair = aggregatePairWaits(p.Waits)
	return p
}

// collectEpochs groups CollEnter/CollExit by (epoch id, op) and derives
// per-rank arrival skew. Epochs with a single recorded member carry no
// wait information and are dropped.
func collectEpochs(evs []trace.Event) []CollEpoch {
	type key struct {
		id uint64
		op int
	}
	type acc struct {
		enter map[int]simtime.Time
		exit  simtime.Time
		nic   bool
	}
	accs := make(map[key]*acc)
	var order []key
	for _, e := range evs {
		if e.Kind != trace.CollEnter && e.Kind != trace.CollExit {
			continue
		}
		k := key{e.ReqID, e.Tag}
		a := accs[k]
		if a == nil {
			a = &acc{enter: make(map[int]simtime.Time)}
			accs[k] = a
			order = append(order, k)
		}
		switch e.Kind {
		case trace.CollEnter:
			if _, ok := a.enter[e.Rank]; !ok {
				a.enter[e.Rank] = e.At
			}
			if e.Peer == 1 {
				a.nic = true
			}
		case trace.CollExit:
			if e.At > a.exit {
				a.exit = e.At
			}
		}
	}
	var out []CollEpoch
	for _, k := range order {
		a := accs[k]
		if len(a.enter) < 2 {
			continue
		}
		ep := CollEpoch{ID: k.id, Op: k.op, NIC: a.nic, Exit: a.exit}
		for rank := range a.enter {
			ep.Ranks = append(ep.Ranks, rank)
		}
		sort.Ints(ep.Ranks)
		first, last := a.enter[ep.Ranks[0]], a.enter[ep.Ranks[0]]
		for _, rank := range ep.Ranks[1:] {
			t := a.enter[rank]
			if t < first {
				first = t
			}
			if t > last {
				last = t
			}
		}
		ep.First, ep.Last = first, last
		sum := 0.0
		for _, rank := range ep.Ranks {
			skew := last.Sub(a.enter[rank])
			ep.Skews = append(ep.Skews, skew)
			us := skew.Micros()
			sum += us
			if us > ep.MaxUS {
				ep.MaxUS = us
			}
		}
		ep.MeanUS = sum / float64(len(ep.Ranks))
		out = append(out, ep)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func aggregateRankWaits(waits []Wait) []RankWaits {
	accs := make(map[int]*RankWaits)
	var ranks []int
	for _, w := range waits {
		a := accs[w.Rank]
		if a == nil {
			a = &RankWaits{Rank: w.Rank}
			accs[w.Rank] = a
			ranks = append(ranks, w.Rank)
		}
		a.Total += w.Dur
		a.ByKind[w.Kind] += w.Dur
		a.Counts[w.Kind]++
	}
	sort.Ints(ranks)
	var out []RankWaits
	for _, r := range ranks {
		out = append(out, *accs[r])
	}
	return out
}

func aggregatePairWaits(waits []Wait) []PairWaits {
	type key struct{ rank, peer int }
	accs := make(map[key]*PairWaits)
	var keys []key
	for _, w := range waits {
		if w.Peer < 0 {
			continue // collective waits have no pairwise partner
		}
		k := key{w.Rank, w.Peer}
		a := accs[k]
		if a == nil {
			a = &PairWaits{Rank: w.Rank, Peer: w.Peer}
			accs[k] = a
			keys = append(keys, k)
		}
		a.Total += w.Dur
		a.ByKind[w.Kind] += w.Dur
		a.Counts[w.Kind]++
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].peer < keys[j].peer
	})
	var out []PairWaits
	for _, k := range keys {
		out = append(out, *accs[k])
	}
	return out
}

// skewBuckets are the arrival-skew histogram boundaries in microseconds;
// the last bucket is unbounded.
var skewBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// SkewStat is one (op, path) group's arrival-skew distribution across
// its epochs' per-rank skews.
type SkewStat struct {
	Op      int
	NIC     bool
	Epochs  int
	Samples int
	MeanUS  float64
	MaxUS   float64
	Buckets []int // len(skewBuckets)+1 counts
}

// SkewStats groups the profile's epochs by (op, path) in op order, host
// before NIC — the Barrier/Allreduce host-vs-NIC-tree comparison.
func (p WaitProfile) SkewStats() []SkewStat {
	type key struct {
		op  int
		nic bool
	}
	accs := make(map[key]*SkewStat)
	var keys []key
	sum := make(map[key]float64)
	for _, ep := range p.Epochs {
		k := key{ep.Op, ep.NIC}
		a := accs[k]
		if a == nil {
			a = &SkewStat{Op: ep.Op, NIC: ep.NIC, Buckets: make([]int, len(skewBuckets)+1)}
			accs[k] = a
			keys = append(keys, k)
		}
		a.Epochs++
		for _, skew := range ep.Skews {
			us := skew.Micros()
			a.Samples++
			sum[k] += us
			if us > a.MaxUS {
				a.MaxUS = us
			}
			b := len(skewBuckets)
			for i, lim := range skewBuckets {
				if us < lim {
					b = i
					break
				}
			}
			a.Buckets[b]++
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].op != keys[j].op {
			return keys[i].op < keys[j].op
		}
		return !keys[i].nic && keys[j].nic
	})
	var out []SkewStat
	for _, k := range keys {
		a := accs[k]
		if a.Samples > 0 {
			a.MeanUS = sum[k] / float64(a.Samples)
		}
		out = append(out, *a)
	}
	return out
}

// collPath names a collective's execution path.
func collPath(nic bool) string {
	if nic {
		return "nic"
	}
	return "host"
}

// Render formats the full wait-state report: the taxonomy summary, the
// per-rank and per-pair aggregations, the collective epochs and the
// arrival-skew histograms. Deterministic for a deterministic stream.
func (p WaitProfile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wait states: %d waits over %d messages, %d collective epochs\n",
		len(p.Waits), p.Messages, len(p.Epochs))

	var totals [numWaitKinds]simtime.Duration
	var counts [numWaitKinds]int
	var maxes [numWaitKinds]simtime.Duration
	for _, w := range p.Waits {
		totals[w.Kind] += w.Dur
		counts[w.Kind]++
		if w.Dur > maxes[w.Kind] {
			maxes[w.Kind] = w.Dur
		}
	}
	fmt.Fprintf(&b, "%-16s %8s %12s %12s %12s\n", "kind", "count", "total us", "mean us", "max us")
	for k := WaitKind(0); k < numWaitKinds; k++ {
		mean := 0.0
		if counts[k] > 0 {
			mean = totals[k].Micros() / float64(counts[k])
		}
		fmt.Fprintf(&b, "%-16s %8d %12.3f %12.3f %12.3f\n",
			k, counts[k], totals[k].Micros(), mean, maxes[k].Micros())
	}

	if len(p.ByRank) > 0 {
		fmt.Fprintf(&b, "per rank:\n%-9s %12s %12s %13s %15s %14s\n",
			"rank", "total us", "late-sender", "late-receiver", "wait-at-barrier", "nic-contention")
		for _, r := range p.ByRank {
			fmt.Fprintf(&b, "%-9d %12.3f %12.3f %13.3f %15.3f %14.3f\n",
				r.Rank, r.Total.Micros(),
				r.ByKind[WaitLateSender].Micros(), r.ByKind[WaitLateReceiver].Micros(),
				r.ByKind[WaitBarrier].Micros(), r.ByKind[WaitNIC].Micros())
		}
	}

	if len(p.ByPair) > 0 {
		b.WriteString("peer pairs (rank waited on peer):\n")
		fmt.Fprintf(&b, "%-11s %8s %12s %12s %13s %14s\n",
			"rank->peer", "waits", "total us", "late-sender", "late-receiver", "nic-contention")
		for _, pr := range p.ByPair {
			n := 0
			for _, c := range pr.Counts {
				n += c
			}
			fmt.Fprintf(&b, "%4d ->%4d %8d %12.3f %12.3f %13.3f %14.3f\n",
				pr.Rank, pr.Peer, n, pr.Total.Micros(),
				pr.ByKind[WaitLateSender].Micros(), pr.ByKind[WaitLateReceiver].Micros(),
				pr.ByKind[WaitNIC].Micros())
		}
	}

	if len(p.Epochs) > 0 {
		b.WriteString("collective epochs:\n")
		fmt.Fprintf(&b, "%-10s %-10s %-5s %6s %12s %12s %10s %10s\n",
			"epoch", "op", "path", "ranks", "first us", "last us", "skew-max", "skew-mean")
		for _, ep := range p.Epochs {
			fmt.Fprintf(&b, "%-10d %-10s %-5s %6d %12.3f %12.3f %10.3f %10.3f\n",
				ep.ID, trace.CollOpName(ep.Op), collPath(ep.NIC), len(ep.Ranks),
				ep.First.Micros(), ep.Last.Micros(), ep.MaxUS, ep.MeanUS)
		}
	}

	b.WriteString(p.RenderSkew())
	return b.String()
}

// RenderSkew formats the arrival-skew histograms at collectives, host
// trees against NIC trees; empty when no epochs were recorded.
func (p WaitProfile) RenderSkew() string {
	stats := p.SkewStats()
	if len(stats) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("arrival skew at collectives (per-rank, host vs NIC trees):\n")
	fmt.Fprintf(&b, "%-10s %-5s %7s %8s %9s %9s |", "op", "path", "epochs", "samples", "mean us", "max us")
	for _, lim := range skewBuckets {
		fmt.Fprintf(&b, " %6s", fmt.Sprintf("<%gus", lim))
	}
	fmt.Fprintf(&b, " %6s\n", "more")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-10s %-5s %7d %8d %9.3f %9.3f |",
			trace.CollOpName(s.Op), collPath(s.NIC), s.Epochs, s.Samples, s.MeanUS, s.MaxUS)
		for _, c := range s.Buckets {
			fmt.Fprintf(&b, " %6d", c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
