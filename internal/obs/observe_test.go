// Cross-layer integration tests: golden protocol timelines over the full
// stack, Perfetto export validity, and the zero-perturbation guarantee
// (attaching the tracer and registry must not move virtual time).
//
// External test package: these tests drive internal/cluster and
// internal/experiments, which import obs.
package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"qsmpi/internal/cluster"
	"qsmpi/internal/datatype"
	"qsmpi/internal/experiments"
	"qsmpi/internal/obs"
	"qsmpi/internal/pml"
	"qsmpi/internal/ptlelan4"
	"qsmpi/internal/trace"
)

// exchange runs one 2-rank send/recv with a full-stack tracer attached and
// returns the recorder.
func exchange(t *testing.T, scheme ptlelan4.Scheme, size int) *trace.Recorder {
	t.Helper()
	o := ptlelan4.BestOptions(scheme)
	rec := trace.NewRecorder(0)
	c := cluster.New(cluster.Spec{Elan: &o, Progress: pml.Polling, Tracer: rec}, 2)
	c.Launch(func(p *cluster.Proc) {
		dt := datatype.Contiguous(size)
		if p.Rank == 0 {
			p.Stack.Send(p.Th, 1, 0, 0, make([]byte, size), dt).Wait(p.Th)
		} else {
			p.Stack.Recv(p.Th, 0, 0, 0, make([]byte, size), dt).Wait(p.Th)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return rec
}

// protocolSteps flattens the recorded events to "rank layer kind" strings,
// skipping the fabric layer (its per-packet events scale with message size
// and fragmentation, which is not what the protocol goldens pin down).
func protocolSteps(rec *trace.Recorder) []string {
	var out []string
	for _, e := range rec.Events() {
		if e.Layer == trace.LayerFabric {
			continue
		}
		out = append(out, fmt.Sprintf("rank%d %s %s", e.Rank, e.Layer, e.Kind))
	}
	return out
}

func checkGolden(t *testing.T, got, want []string) {
	t.Helper()
	for i := 0; i < len(got) || i < len(want); i++ {
		var g, w string
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Errorf("step %d: got %q, want %q", i, g, w)
		}
	}
}

// TestGoldenReadTimeline pins the RDMA-read rendezvous of Fig. 4: RTS via
// QDMA, receiver-side match, RDMA read pulling the body, and the chained
// FIN_ACK completing the sender — one control message fewer than write.
func TestGoldenReadTimeline(t *testing.T) {
	got := protocolSteps(exchange(t, ptlelan4.RDMARead, 4096))
	checkGolden(t, got, []string{
		"rank1 pml recv-posted",
		"rank0 pml send-posted",
		"rank0 ptl rndv-tx",
		"rank0 elan4 qdma-issued",
		"rank1 elan4 qdma-deposited",
		"rank1 pml first-arrived",
		"rank1 pml matched",
		"rank1 ptl get-issued",
		"rank0 elan4 dma-completed",
		"rank0 elan4 chain-fired",
		"rank1 elan4 rdma-read-issued",
		"rank1 elan4 dma-completed",
		"rank1 elan4 chain-fired",
		"rank1 pml recv-progressed",
		"rank1 pml recv-completed",
		"rank1 elan4 qdma-issued",
		"rank0 elan4 qdma-deposited",
		"rank0 ptl fin-ack-rx",
		"rank0 pml send-progressed",
		"rank0 pml send-completed",
		"rank1 elan4 dma-completed",
	})
}

// TestGoldenWriteTimeline pins the RDMA-write rendezvous of Fig. 3: RTS,
// receiver ACK carrying the destination descriptor, sender-side RDMA
// write, and the trailing FIN.
func TestGoldenWriteTimeline(t *testing.T) {
	got := protocolSteps(exchange(t, ptlelan4.RDMAWrite, 4096))
	checkGolden(t, got, []string{
		"rank1 pml recv-posted",
		"rank0 pml send-posted",
		"rank0 ptl rndv-tx",
		"rank0 elan4 qdma-issued",
		"rank1 elan4 qdma-deposited",
		"rank1 pml first-arrived",
		"rank1 pml matched",
		"rank0 elan4 dma-completed",
		"rank0 elan4 chain-fired",
		"rank1 ptl ack-tx",
		"rank1 elan4 qdma-issued",
		"rank0 elan4 qdma-deposited",
		"rank0 pml ack-arrived",
		"rank0 ptl put-issued",
		"rank1 elan4 dma-completed",
		"rank1 elan4 chain-fired",
		"rank0 elan4 rdma-write-issued",
		"rank0 elan4 dma-completed",
		"rank0 elan4 chain-fired",
		"rank0 pml send-progressed",
		"rank0 pml send-completed",
		"rank0 elan4 qdma-issued",
		"rank1 elan4 qdma-deposited",
		"rank1 ptl fin-rx",
		"rank1 pml recv-progressed",
		"rank1 pml recv-completed",
		"rank0 elan4 dma-completed",
	})
}

// TestGoldenEagerTimeline pins the short-message path: one QDMA carries
// header and data, and the sender completes locally before the deposit.
func TestGoldenEagerTimeline(t *testing.T) {
	got := protocolSteps(exchange(t, ptlelan4.RDMARead, 256))
	checkGolden(t, got, []string{
		"rank1 pml recv-posted",
		"rank0 pml send-posted",
		"rank0 ptl eager-tx",
		"rank0 pml send-progressed",
		"rank0 pml send-completed",
		"rank0 elan4 qdma-issued",
		"rank1 elan4 qdma-deposited",
		"rank1 pml first-arrived",
		"rank1 pml matched",
		"rank1 pml recv-progressed",
		"rank1 pml recv-completed",
		"rank0 elan4 dma-completed",
		"rank0 elan4 chain-fired",
	})
}

// TestFabricEventsRecorded checks the layer the goldens skip: every
// rendezvous exchange must record matching sent/delivered packet events.
func TestFabricEventsRecorded(t *testing.T) {
	rec := exchange(t, ptlelan4.RDMARead, 4096)
	by := rec.ByKind()
	if by[trace.PktSent] == 0 || by[trace.PktSent] != by[trace.PktDelivered] {
		t.Fatalf("fabric events: %d sent, %d delivered", by[trace.PktSent], by[trace.PktDelivered])
	}
}

// TestPerfettoExportOfRendezvous validates the exported Chrome trace-event
// JSON for a rendezvous exchange: well-formed, one thread track per
// rank×layer with all four layers present, and paired spans with
// non-negative durations.
func TestPerfettoExportOfRendezvous(t *testing.T) {
	rec := exchange(t, ptlelan4.RDMARead, 100000)
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace-event JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	layers := map[string]bool{}
	spans := map[string]int{}
	counters := map[string]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				layers[e.Args["name"].(string)] = true
			}
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("span %q without valid dur", e.Name)
			}
			spans[e.Name]++
		case "C":
			counters[e.Name]++
		case "i":
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	for _, l := range []string{"pml", "ptl", "elan4", "fabric"} {
		if !layers[l] {
			t.Errorf("layer %q missing from export (have %v)", l, layers)
		}
	}
	for _, s := range []string{"send", "recv", "qdma", "rdma-read"} {
		if spans[s] == 0 {
			t.Errorf("span %q missing from export (have %v)", s, spans)
		}
	}
	// The PML posts/completions of the exchange feed the queue-depth
	// counter track.
	if counters["pml-inflight"] == 0 {
		t.Errorf("pml-inflight counter track missing from export (have %v)", counters)
	}
}

// TestObservabilityDoesNotPerturbVirtualTime is the determinism gate: the
// same workload must produce bit-identical simulated latencies with no
// instrumentation and with a tracer plus metrics registry attached to
// every layer. The figures stay byte-identical because this holds.
func TestObservabilityDoesNotPerturbVirtualTime(t *testing.T) {
	for _, scheme := range []ptlelan4.Scheme{ptlelan4.RDMARead, ptlelan4.RDMAWrite} {
		for _, size := range []int{4, 512, 4096, 65536} {
			o := ptlelan4.BestOptions(scheme)
			spec := cluster.Spec{Elan: &o, Progress: pml.Polling}
			plain := experiments.OpenMPIPingPong(spec, size, 5)
			observed := experiments.ObservedPingPong(spec, size, 5, experiments.Warmup, 0)
			if observed.LatencyUS != plain {
				t.Errorf("scheme %v size %d: latency %v with instrumentation, %v without",
					scheme, size, observed.LatencyUS, plain)
			}
			if observed.Recorder.Len() == 0 {
				t.Errorf("scheme %v size %d: instrumented run recorded nothing", scheme, size)
			}
			if observed.Metrics.Total("pml", "sends") == 0 {
				t.Errorf("scheme %v size %d: metrics empty", scheme, size)
			}
		}
	}
}
