// Critical-path profiler and per-peer flow accounting: a post-hoc
// analyzer over the cross-layer trace.Event stream. Analyze reconstructs
// every message's lifecycle through its Corr correlator (trace.MsgID) and
// decomposes the end-to-end latency into named phases — scheduling, DMA
// queue residency, wire time, receive drain, match wait, rendezvous
// handshake, body DMA, FIN/completion lag — keyed by protocol path
// (eager / rdma-write / rdma-read / tport / self).
//
// Phases telescope: each phase ends at an anchor event, and a missing
// anchor (an uninstrumented or collapsed step, e.g. the DMA kinds on the
// TCP transport) folds its time into the next present phase. The phase
// durations of one message therefore sum to its end-to-end latency by
// construction, whatever subset of anchors was recorded.
//
// Everything here runs after the simulation, on a copy of the event
// stream; attaching a profiler cannot perturb a run. Virtual time is
// deterministic, so all rendered tables are byte-identical across runs of
// the same scenario.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

// Phase is one named segment of a message's lifecycle.
type Phase struct {
	Name string
	Dur  simtime.Duration
}

// Message is one reconstructed message: both endpoints' PML events, the
// transport's control traffic and the NIC's descriptor lifecycle, stitched
// through the Corr correlator.
type Message struct {
	Corr    uint64
	Src     int
	Dst     int
	Tag     int
	Bytes   int
	Path    string // eager | rdma-write | rdma-read | tport | self | unknown
	Start   simtime.Time
	End     simtime.Time
	Phases  []Phase
	Retries int // QDMA retry events attributed to this message
}

// Latency is the message's end-to-end virtual time; the phase durations
// sum to exactly this.
func (m Message) Latency() simtime.Duration { return m.End.Sub(m.Start) }

// PhaseStat aggregates one phase across a set of messages.
type PhaseStat struct {
	Name   string
	Count  int
	MeanUS float64
	MaxUS  float64
	sumUS  float64
}

// Flow aggregates every message of one (src,dst) pair.
type Flow struct {
	Src      int
	Dst      int
	Messages int
	Bytes    int
	Retries  int
	Phases   []PhaseStat
}

// PathStat aggregates every message of one protocol path.
type PathStat struct {
	Path     string
	Messages int
	Bytes    int
	Retries  int
	// Latency is the end-to-end stat; Phases decompose it.
	Latency PhaseStat
	Phases  []PhaseStat
}

// Profile is the result of analyzing one run's event stream.
type Profile struct {
	// Messages is every reconstructed message, ordered by start time.
	Messages []Message
	// Paths aggregates per protocol path, in canonical path order.
	Paths []PathStat
	// Flows aggregates per (src,dst), ordered by source then destination.
	Flows []Flow
	// Critical is the run's critical path in chronological order: starting
	// from the latest-ending message, each step walks back to the
	// latest-ending message that finished before the current one started
	// and shares an endpoint rank with it — the dependency chain an MPI
	// run's makespan rests on.
	Critical []Message
}

// anchor is one step of a protocol path's telescoping chain: the phase
// named phase ends at the first occurrence of kind not yet consumed by an
// earlier anchor. The first anchor of a chain opens the message (phase "").
type anchor struct {
	kind  trace.Kind
	phase string
}

// chains defines the anchor sequence of each protocol path (Figs. 2–4 of
// the paper: eager, rendezvous with RDMA write, rendezvous with RDMA
// read, plus the tport and loopback transports).
var chains = map[string][]anchor{
	"eager": {
		{trace.SendPosted, ""},
		{trace.PTLEagerTx, "sched"},
		{trace.QDMAIssued, "dma-queue"},
		{trace.QDMADeposited, "wire"},
		{trace.FirstArrived, "drain"},
		{trace.Matched, "match"},
		{trace.RecvCompleted, "deliver"},
	},
	"rdma-write": {
		{trace.SendPosted, ""},
		{trace.PTLRndvTx, "sched"},
		{trace.QDMAIssued, "dma-queue"},
		{trace.QDMADeposited, "wire"},
		{trace.FirstArrived, "drain"},
		{trace.Matched, "match"},
		{trace.AckArrived, "handshake"},
		{trace.PTLPutIssued, "sched"},
		{trace.RDMAWriteIssued, "dma-queue"},
		{trace.SendCompleted, "body-dma"},
		{trace.RecvCompleted, "fin-lag"},
	},
	"rdma-read": {
		{trace.SendPosted, ""},
		{trace.PTLRndvTx, "sched"},
		{trace.QDMAIssued, "dma-queue"},
		{trace.QDMADeposited, "wire"},
		{trace.FirstArrived, "drain"},
		{trace.Matched, "match"},
		{trace.PTLGetIssued, "handshake"},
		{trace.RDMAReadIssued, "dma-queue"},
		{trace.RecvCompleted, "body-dma"},
		{trace.SendCompleted, "fin-lag"},
	},
	"tport": {
		{trace.SendPosted, ""},
		{trace.FirstArrived, "wire"},
		{trace.Matched, "match"},
		{trace.RecvCompleted, "pull"},
		{trace.SendCompleted, "fin-lag"},
	},
	"self": {
		{trace.FirstArrived, ""},
		{trace.Matched, "match"},
		{trace.RecvCompleted, "deliver"},
	},
}

// pathOrder is the canonical rendering order of protocol paths.
var pathOrder = []string{"eager", "rdma-write", "rdma-read", "tport", "self", "unknown"}

// phaseOrder is the canonical rendering order of phase names.
var phaseOrder = []string{
	"sched", "dma-queue", "wire", "drain", "match",
	"handshake", "body-dma", "pull", "deliver", "fin-lag",
}

// Analyze reconstructs every correlated message in the event stream and
// aggregates flows, per-path breakdowns and the critical path. Events with
// Corr zero (uncorrelated: collectives, RTE, raw NIC traffic) are ignored.
func Analyze(events []trace.Event) Profile {
	evs := append([]trace.Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	byCorr := make(map[uint64][]trace.Event)
	var corrs []uint64
	for _, e := range evs {
		if e.Corr == 0 {
			continue
		}
		if _, ok := byCorr[e.Corr]; !ok {
			corrs = append(corrs, e.Corr)
		}
		byCorr[e.Corr] = append(byCorr[e.Corr], e)
	}

	var p Profile
	for _, corr := range corrs {
		if m, ok := reconstruct(corr, byCorr[corr]); ok {
			p.Messages = append(p.Messages, m)
		}
	}
	sort.SliceStable(p.Messages, func(i, j int) bool {
		a, b := p.Messages[i], p.Messages[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Corr < b.Corr
	})
	p.Paths = aggregatePaths(p.Messages)
	p.Flows = aggregateFlows(p.Messages)
	p.Critical = criticalPath(p.Messages)
	return p
}

// reconstruct classifies one message's events and walks its anchor chain.
// evs is time-sorted.
func reconstruct(corr uint64, evs []trace.Event) (Message, bool) {
	src, _ := trace.SplitMsgID(corr)
	m := Message{Corr: corr, Src: src, Dst: -1, Tag: -1}

	var hasKind [64]bool
	tport := false
	for _, e := range evs {
		if int(e.Kind) < len(hasKind) {
			hasKind[e.Kind] = true
		}
		if e.Layer == trace.LayerTport {
			tport = true
		}
		if e.Kind == trace.QDMARetried {
			m.Retries++
		}
		switch e.Kind {
		case trace.SendPosted:
			if e.Rank == src {
				m.Dst = e.Peer
			}
		case trace.FirstArrived, trace.Matched, trace.RecvCompleted:
			if m.Dst < 0 {
				m.Dst = e.Rank
			}
		}
		switch e.Kind {
		case trace.SendPosted, trace.Matched, trace.RecvCompleted, trace.FirstArrived:
			if (e.Layer == trace.LayerPML || e.Layer == trace.LayerTport) && e.Bytes > m.Bytes {
				m.Bytes = e.Bytes
			}
			if m.Tag < 0 {
				m.Tag = e.Tag
			}
		}
	}

	switch {
	case tport:
		m.Path = "tport"
	case m.Dst == m.Src:
		m.Path = "self"
	case hasKind[trace.PTLEagerTx]:
		m.Path = "eager"
	case hasKind[trace.PTLGetIssued]:
		m.Path = "rdma-read"
	case hasKind[trace.PTLRndvTx] || hasKind[trace.AckArrived] || hasKind[trace.PTLPutIssued]:
		m.Path = "rdma-write"
	default:
		m.Path = "unknown"
	}
	chain := chains[m.Path]
	if chain == nil {
		chain = chains["eager"] // unknown: best-effort generic shape
	}

	// Walk the chain: each anchor consumes the first not-yet-consumed
	// event of its kind. Scanning forward through the time-sorted slice
	// keeps the anchors monotone, so every phase duration is ≥ 0 and the
	// durations telescope to End−Start exactly.
	idx := 0
	started := false
	var prev simtime.Time
	for _, a := range chain {
		j := -1
		for i := idx; i < len(evs); i++ {
			if evs[i].Kind == a.kind {
				j = i
				break
			}
		}
		if j < 0 {
			continue // missing anchor: fold into the next present phase
		}
		t := evs[j].At
		if !started {
			m.Start, prev, started = t, t, true
		} else {
			m.Phases = append(m.Phases, Phase{Name: a.phase, Dur: t.Sub(prev)})
			prev = t
		}
		idx = j + 1
	}
	if !started {
		return Message{}, false
	}
	m.End = prev
	return m, true
}

// statsInto folds a message's phases (and latency) into a name-keyed
// accumulator map.
func statsInto(acc map[string]*PhaseStat, m Message) {
	for _, ph := range m.Phases {
		s := acc[ph.Name]
		if s == nil {
			s = &PhaseStat{Name: ph.Name}
			acc[ph.Name] = s
		}
		us := ph.Dur.Micros()
		s.Count++
		s.sumUS += us
		if us > s.MaxUS {
			s.MaxUS = us
		}
	}
}

// finishStats orders an accumulator canonically and computes means.
func finishStats(acc map[string]*PhaseStat) []PhaseStat {
	var out []PhaseStat
	seen := make(map[string]bool)
	emit := func(name string) {
		s := acc[name]
		if s == nil || seen[name] {
			return
		}
		seen[name] = true
		s.MeanUS = s.sumUS / float64(s.Count)
		out = append(out, *s)
	}
	for _, name := range phaseOrder {
		emit(name)
	}
	// Any name outside the canonical list (future phases) sorts last.
	var rest []string
	for name := range acc {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		emit(name)
	}
	return out
}

func aggregatePaths(msgs []Message) []PathStat {
	accs := make(map[string]*PathStat)
	phases := make(map[string]map[string]*PhaseStat)
	for _, m := range msgs {
		ps := accs[m.Path]
		if ps == nil {
			ps = &PathStat{Path: m.Path, Latency: PhaseStat{Name: "total"}}
			accs[m.Path] = ps
			phases[m.Path] = make(map[string]*PhaseStat)
		}
		ps.Messages++
		ps.Bytes += m.Bytes
		ps.Retries += m.Retries
		us := m.Latency().Micros()
		ps.Latency.Count++
		ps.Latency.sumUS += us
		if us > ps.Latency.MaxUS {
			ps.Latency.MaxUS = us
		}
		statsInto(phases[m.Path], m)
	}
	var out []PathStat
	for _, path := range pathOrder {
		ps := accs[path]
		if ps == nil {
			continue
		}
		ps.Latency.MeanUS = ps.Latency.sumUS / float64(ps.Latency.Count)
		ps.Phases = finishStats(phases[path])
		out = append(out, *ps)
	}
	return out
}

func aggregateFlows(msgs []Message) []Flow {
	type key struct{ src, dst int }
	accs := make(map[key]*Flow)
	phases := make(map[key]map[string]*PhaseStat)
	var keys []key
	for _, m := range msgs {
		k := key{m.Src, m.Dst}
		f := accs[k]
		if f == nil {
			f = &Flow{Src: m.Src, Dst: m.Dst}
			accs[k] = f
			phases[k] = make(map[string]*PhaseStat)
			keys = append(keys, k)
		}
		f.Messages++
		f.Bytes += m.Bytes
		f.Retries += m.Retries
		statsInto(phases[k], m)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	var out []Flow
	for _, k := range keys {
		f := accs[k]
		f.Phases = finishStats(phases[k])
		out = append(out, *f)
	}
	return out
}

// criticalPath walks backward from the run's latest-ending message,
// repeatedly picking the latest-ending message that finished at or before
// the current one's start and touches one of its endpoint ranks. The walk
// is bounded and fully deterministic (ties break toward the smaller
// correlator). Returned in chronological order.
func criticalPath(msgs []Message) []Message {
	if len(msgs) == 0 {
		return nil
	}
	const maxHops = 32
	later := func(a, b Message) bool { // a strictly preferred over b
		if a.End != b.End {
			return a.End > b.End
		}
		return a.Corr < b.Corr
	}
	cur := msgs[0]
	for _, m := range msgs[1:] {
		if later(m, cur) {
			cur = m
		}
	}
	path := []Message{cur}
	for len(path) < maxHops {
		var best Message
		found := false
		for _, m := range msgs {
			if m.Corr == cur.Corr || m.End > cur.Start {
				continue
			}
			if m.Src != cur.Src && m.Src != cur.Dst && m.Dst != cur.Src && m.Dst != cur.Dst {
				continue
			}
			if !found || later(m, best) {
				best, found = m, true
			}
		}
		if !found {
			break
		}
		path = append(path, best)
		cur = best
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// ---- rendering ----

// RenderBreakdown formats the per-path phase decomposition as an aligned
// table: one "total" end-to-end row per path followed by its phases.
func (p Profile) RenderBreakdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %12s  %-10s %8s %12s %12s\n",
		"path", "msgs", "bytes", "phase", "count", "mean us", "max us")
	for _, ps := range p.Paths {
		fmt.Fprintf(&b, "%-10s %8d %12d  %-10s %8d %12.3f %12.3f\n",
			ps.Path, ps.Messages, ps.Bytes,
			ps.Latency.Name, ps.Latency.Count, ps.Latency.MeanUS, ps.Latency.MaxUS)
		for _, s := range ps.Phases {
			fmt.Fprintf(&b, "%-10s %8s %12s  %-10s %8d %12.3f %12.3f\n",
				"", "", "", s.Name, s.Count, s.MeanUS, s.MaxUS)
		}
	}
	return b.String()
}

// RenderFlows formats the per-(src,dst) flow table: one header row per
// flow followed by its phase statistics.
func (p Profile) RenderFlows() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %8s %12s %8s  %-10s %8s %12s %12s\n",
		"src->dst", "msgs", "bytes", "retries", "phase", "count", "mean us", "max us")
	for _, f := range p.Flows {
		fmt.Fprintf(&b, "%3d ->%3d %8d %12d %8d\n", f.Src, f.Dst, f.Messages, f.Bytes, f.Retries)
		for _, s := range f.Phases {
			fmt.Fprintf(&b, "%-9s %8s %12s %8s  %-10s %8d %12.3f %12.3f\n",
				"", "", "", "", s.Name, s.Count, s.MeanUS, s.MaxUS)
		}
	}
	return b.String()
}

// RenderCritical formats the critical path, one hop per line with its
// inline phase decomposition.
func (p Profile) RenderCritical() string {
	var b strings.Builder
	if len(p.Critical) == 0 {
		b.WriteString("critical path: no correlated messages\n")
		return b.String()
	}
	span := p.Critical[len(p.Critical)-1].End.Sub(p.Critical[0].Start)
	fmt.Fprintf(&b, "critical path: %d hops, %.3fus span\n", len(p.Critical), span.Micros())
	for i, m := range p.Critical {
		fmt.Fprintf(&b, "%3d. %12.3fus +%10.3fus  rank %d -> %d  %-10s %7dB",
			i+1, m.Start.Micros(), m.Latency().Micros(), m.Src, m.Dst, m.Path, m.Bytes)
		var parts []string
		for _, ph := range m.Phases {
			parts = append(parts, fmt.Sprintf("%s %.3f", ph.Name, ph.Dur.Micros()))
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, "  (%s)", strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
