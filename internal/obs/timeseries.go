// Virtual-time telemetry sampler (DESIGN.md §8.4): a kernel-timer-driven
// observer that snapshots the stack's instantaneous gauges — receive/
// completion queue depth, progress duty, pending requests, send-buffer
// occupancy — and the fabric's per-link traffic counters into per-rank
// and per-link ring buffers on a fixed virtual-time period, yielding
// rank×time and link×time matrices. Attach one through
// cluster.Spec.Sampler; when absent nothing is armed and the run is
// untouched (zero perturbation), and like every observer the sampler
// reads state but never charges virtual time to any simulated entity.
//
// Determinism at any shard count: the tick runs on the coordinator
// (GlobalEntity) at k·period + 1ps. Under the conservative engine every
// worker event strictly before the tick time has executed — and every
// deferred fabric commit has replayed — before a coordinator event runs,
// so the counters the tick reads are exactly the state at that instant
// regardless of sharding; the 1ps phase offset keeps tick times off the
// instants protocol events land on, where classic-kernel tie order
// (insertion sequence) and sharded tie order (coordinator first) could
// disagree. Trace emission iterates node-major, matching the per-node
// recorder merge order (time, then node index), so a traced run's
// GaugeSample stream is byte-identical at -shards 1 and -shards N.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"qsmpi/internal/simtime"
	"qsmpi/internal/trace"
)

// DefaultSamplePeriod is the sampling period used when a Sampler is
// built with period 0: fine enough to resolve collective phases (tens of
// microseconds) without swamping the trace stream.
const DefaultSamplePeriod = 50 * simtime.Microsecond

// Gauge identifies one per-rank sampled quantity. The values are the
// Tag of GaugeSample trace events (LayerPML), so renderers and the
// Perfetto exporter can name tracks without a side table.
type Gauge uint8

// Per-rank gauges, in sample-vector order.
const (
	GaugeRecvQDepth   Gauge = iota // NIC receive queue occupancy
	GaugeCQDepth                   // completion queue occupancy
	GaugeDuty                      // progress duty cycle, per-mille
	GaugePendingSends              // incomplete PML send requests
	GaugePendingRecvs              // incomplete PML receive requests
	GaugeUnexpected                // unexpected-message queue depth
	GaugeSendBufs                  // NIC send buffers in flight

	NumRankGauges
)

func (g Gauge) String() string {
	switch g {
	case GaugeRecvQDepth:
		return "recvq-depth"
	case GaugeCQDepth:
		return "cq-depth"
	case GaugeDuty:
		return "duty-permille"
	case GaugePendingSends:
		return "pending-sends"
	case GaugePendingRecvs:
		return "pending-recvs"
	case GaugeUnexpected:
		return "unexpected-depth"
	case GaugeSendBufs:
		return "sendbufs-inflight"
	}
	return fmt.Sprintf("Gauge(%d)", uint8(g))
}

// LinkGauge identifies one per-link sampled quantity — the Tag of
// LayerFabric GaugeSample events. All three are cumulative counters;
// renderers difference adjacent ticks to recover per-interval rates.
type LinkGauge uint8

// Per-link gauges, in sample-vector order.
const (
	LinkGaugePackets LinkGauge = iota // wire packets on the node's up-link
	LinkGaugeBytes                    // wire bytes on the node's up-link
	LinkGaugeBytesIn                  // payload bytes delivered to the port

	NumLinkGauges
)

func (g LinkGauge) String() string {
	switch g {
	case LinkGaugePackets:
		return "uplink-pkts"
	case LinkGaugeBytes:
		return "uplink-bytes"
	case LinkGaugeBytesIn:
		return "port-bytes-in"
	}
	return fmt.Sprintf("LinkGauge(%d)", uint8(g))
}

// RankProbeFn reads one rank's gauge vector at a tick instant.
type RankProbeFn func(now simtime.Time) [NumRankGauges]int64

// LinkProbeFn reads one link's cumulative counter vector.
type LinkProbeFn func() [NumLinkGauges]int64

// rankSeries is one rank's registration plus its sample ring.
type rankSeries struct {
	rank  int
	probe RankProbeFn
	rec   *trace.Recorder
	ring  [][NumRankGauges]int64
}

// linkSeries is one link's registration plus its sample ring. rail
// disambiguates multi-rail fabrics sharing the same port number.
type linkSeries struct {
	port, rail int
	probe      LinkProbeFn
	rec        *trace.Recorder
	ring       [][NumLinkGauges]int64
}

// samplerNode groups one node's registrations: tick emission iterates
// nodes in index order (links, then ranks) so the classic shared-tracer
// record order equals the sharded per-node merge order.
type samplerNode struct {
	links []*linkSeries
	ranks []*rankSeries
}

// Sampler is the virtual-time telemetry sampler. Create one with
// NewSampler, hand it to cluster.Spec.Sampler, and read the matrices
// (RankMatrix/LinkMatrix) after the run. All methods run inside the
// cooperative simulation; no locking.
type Sampler struct {
	period simtime.Duration
	limit  int // ticks retained per ring (0 = unbounded)

	k       *simtime.Kernel
	nodes   []*samplerNode
	times   []simtime.Time // tick stamps, ring-aligned with every series
	tick    uint64         // ticks taken, including evicted ones
	evicted uint64
}

// NewSampler returns a sampler with the given virtual-time period
// (0 = DefaultSamplePeriod) retaining at most limit ticks per series
// (0 = unbounded; older ticks are evicted ring-style).
func NewSampler(period simtime.Duration, limit int) *Sampler {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	return &Sampler{period: period, limit: limit}
}

// Period returns the configured sampling period.
func (s *Sampler) Period() simtime.Duration { return s.period }

// Ticks returns how many sampling ticks have run (including any whose
// samples were evicted by the ring limit).
func (s *Sampler) Ticks() uint64 { return s.tick }

// Bind attaches the sampler to the simulation kernel and arms the tick
// chain; the cluster does this at construction. The chain is built from
// cancel-on-idle timers, so the sampler never keeps a finished run
// alive, and it runs on the coordinator entity in both engines.
func (s *Sampler) Bind(k *simtime.Kernel) {
	if s.k != nil {
		return
	}
	s.k = k
	g := k.SchedFor(simtime.GlobalEntity)
	var arm func(d simtime.Duration)
	arm = func(d simtime.Duration) {
		g.AfterCancelable(d, "obs:sampler", func() {
			s.takeSample()
			arm(s.period)
		})
	}
	// Phase offset: first tick at period + 1ps, then every period.
	arm(s.period + simtime.Picosecond)
}

// node returns (growing on demand) the registration group for one node.
func (s *Sampler) node(n int) *samplerNode {
	for len(s.nodes) <= n {
		s.nodes = append(s.nodes, &samplerNode{})
	}
	return s.nodes[n]
}

// RegisterRank installs one rank's gauge probe. node is the rank's
// placement (emission is node-major); rec is the recorder GaugeSample
// events go to (nil records nothing — ring buffers still fill).
// A series registered after ticks have run is zero-padded so its ring
// stays column-aligned with every other series. Re-registering a rank
// replaces its probe and resets its ring.
func (s *Sampler) RegisterRank(rank, node int, rec *trace.Recorder, probe RankProbeFn) {
	nd := s.node(node)
	fresh := &rankSeries{rank: rank, probe: probe, rec: rec,
		ring: make([][NumRankGauges]int64, len(s.times))}
	for i, rs := range nd.ranks {
		if rs.rank == rank {
			nd.ranks[i] = fresh
			return
		}
	}
	nd.ranks = append(nd.ranks, fresh)
	sort.Slice(nd.ranks, func(i, j int) bool { return nd.ranks[i].rank < nd.ranks[j].rank })
}

// RegisterLink installs one link's counter probe: port is the node's
// fabric port, rail the Quadrics rail index (0 on single-rail specs).
// Like RegisterRank, late registrations are zero-padded for alignment.
func (s *Sampler) RegisterLink(port, rail int, rec *trace.Recorder, probe LinkProbeFn) {
	nd := s.node(port)
	fresh := &linkSeries{port: port, rail: rail, probe: probe, rec: rec,
		ring: make([][NumLinkGauges]int64, len(s.times))}
	for i, ls := range nd.links {
		if ls.port == port && ls.rail == rail {
			nd.links[i] = fresh
			return
		}
	}
	nd.links = append(nd.links, fresh)
	sort.Slice(nd.links, func(i, j int) bool { return nd.links[i].rail < nd.links[j].rail })
}

// takeSample is one coordinator tick: read every probe, append to the
// rings, and (when recorders are attached) emit one GaugeSample event
// per gauge. Iteration is node-major — see the package comment.
func (s *Sampler) takeSample() {
	now := s.k.Now()
	s.tick++
	if s.limit > 0 && len(s.times) >= s.limit {
		s.times = append(s.times[:0], s.times[1:]...)
		s.evicted++
	}
	s.times = append(s.times, now)
	for _, nd := range s.nodes {
		for _, ls := range nd.links {
			v := ls.probe()
			if s.limit > 0 && len(ls.ring) >= s.limit {
				ls.ring = append(ls.ring[:0], ls.ring[1:]...)
			}
			ls.ring = append(ls.ring, v)
			if ls.rec != nil {
				for g := LinkGauge(0); g < NumLinkGauges; g++ {
					ls.rec.Record(trace.Event{
						At: now, Rank: ls.port, Layer: trace.LayerFabric,
						Kind: trace.GaugeSample, ReqID: s.tick,
						Peer: ls.rail, Tag: int(g), Bytes: int(v[g]),
						Corr: 0, // an instant sample, deliberately uncorrelated
					})
				}
			}
		}
		for _, rs := range nd.ranks {
			v := rs.probe(now)
			if s.limit > 0 && len(rs.ring) >= s.limit {
				rs.ring = append(rs.ring[:0], rs.ring[1:]...)
			}
			rs.ring = append(rs.ring, v)
			if rs.rec != nil {
				for g := Gauge(0); g < NumRankGauges; g++ {
					rs.rec.Record(trace.Event{
						At: now, Rank: rs.rank, Layer: trace.LayerPML,
						Kind: trace.GaugeSample, ReqID: s.tick,
						Peer: -1, Tag: int(g), Bytes: int(v[g]),
						Corr: 0, // an instant sample, deliberately uncorrelated
					})
				}
			}
		}
	}
}

// Series is one row of a telemetry matrix: a stable label plus one
// value per retained tick (column order matches Matrix.Times).
type Series struct {
	Label string
	Vals  []int64
}

// Matrix is a gauge's rank×time (or link×time) view: every retained
// tick's stamp and one row per registered series. Evicted reports ticks
// lost to the ring limit (their columns are simply absent).
type Matrix struct {
	Gauge   string
	Times   []simtime.Time
	Rows    []Series
	Evicted uint64
}

// RankMatrix assembles gauge g's rank×time matrix, rows sorted by rank.
func (s *Sampler) RankMatrix(g Gauge) Matrix {
	m := Matrix{Gauge: g.String(), Times: append([]simtime.Time(nil), s.times...), Evicted: s.evicted}
	var all []*rankSeries
	for _, nd := range s.nodes {
		all = append(all, nd.ranks...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rank < all[j].rank })
	for _, rs := range all {
		vals := make([]int64, len(rs.ring))
		for i, v := range rs.ring {
			vals[i] = v[g]
		}
		m.Rows = append(m.Rows, Series{Label: fmt.Sprintf("rank %3d", rs.rank), Vals: vals})
	}
	return m
}

// LinkMatrix assembles gauge g's link×time matrix, rows sorted by
// (port, rail).
func (s *Sampler) LinkMatrix(g LinkGauge) Matrix {
	m := Matrix{Gauge: g.String(), Times: append([]simtime.Time(nil), s.times...), Evicted: s.evicted}
	var all []*linkSeries
	for _, nd := range s.nodes {
		all = append(all, nd.links...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].port != all[j].port {
			return all[i].port < all[j].port
		}
		return all[i].rail < all[j].rail
	})
	for _, ls := range all {
		vals := make([]int64, len(ls.ring))
		for i, v := range ls.ring {
			vals[i] = v[g]
		}
		label := fmt.Sprintf("port %3d", ls.port)
		if ls.rail > 0 {
			label = fmt.Sprintf("port %3d.r%d", ls.port, ls.rail)
		}
		m.Rows = append(m.Rows, Series{Label: label, Vals: vals})
	}
	return m
}

// Deltas converts a cumulative-counter matrix into per-interval
// increments: column i becomes v[i] − v[i−1] (column 0 keeps its value,
// the increment since simulation start). Gauge matrices (instantaneous
// depths) should not be differenced.
func (m Matrix) Deltas() Matrix {
	out := Matrix{Gauge: m.Gauge + " (per interval)", Times: m.Times, Evicted: m.Evicted}
	for _, r := range m.Rows {
		vals := make([]int64, len(r.Vals))
		for i, v := range r.Vals {
			if i == 0 {
				vals[i] = v
			} else {
				vals[i] = v - r.Vals[i-1]
			}
		}
		out.Rows = append(out.Rows, Series{Label: r.Label, Vals: vals})
	}
	return out
}

// heatRamp maps intensity 0..9 to a glyph; zero is blank so quiet cells
// read as whitespace.
const heatRamp = " .:-=+*#%@"

// Heatmap renders the matrix as an ASCII rank×time (or link×time)
// intensity map: one row per series, one glyph per tick, scaled to the
// matrix-wide maximum. maxCols > 0 compresses wider matrices by folding
// adjacent columns with max(), keeping the output terminal-sized.
func (m Matrix) Heatmap(maxCols int) string {
	rows := make([][]int64, len(m.Rows))
	times := m.Times
	for i, r := range m.Rows {
		rows[i] = r.Vals
	}
	fold := 1
	if maxCols > 0 && len(times) > maxCols {
		fold = (len(times) + maxCols - 1) / maxCols
		for i, vals := range rows {
			rows[i] = foldMax(vals, fold)
		}
		times = foldTimes(times, fold)
	}
	var max int64
	for _, vals := range rows {
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d rows × %d ticks", m.Gauge, len(m.Rows), len(m.Times))
	if fold > 1 {
		fmt.Fprintf(&b, " (folded ×%d)", fold)
	}
	if len(m.Times) > 0 {
		fmt.Fprintf(&b, ", t=%.1f..%.1fus", m.Times[0].Micros(), m.Times[len(m.Times)-1].Micros())
	}
	fmt.Fprintf(&b, ", max=%d", max)
	if m.Evicted > 0 {
		fmt.Fprintf(&b, " (+%d ticks evicted)", m.Evicted)
	}
	b.WriteString("\n")
	for i, r := range m.Rows {
		fmt.Fprintf(&b, "  %-12s |", r.Label)
		for _, v := range rows[i] {
			b.WriteByte(heatRamp[heatLevel(v, max)])
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// heatLevel scales v into the ramp: zero stays blank, any non-zero value
// renders at least the faintest glyph.
func heatLevel(v, max int64) int {
	if v <= 0 || max <= 0 {
		return 0
	}
	lvl := int(v * int64(len(heatRamp)-1) / max)
	if lvl < 1 {
		lvl = 1
	}
	return lvl
}

// foldMax reduces vals by taking the max of each fold-sized group.
func foldMax(vals []int64, fold int) []int64 {
	var out []int64
	for i := 0; i < len(vals); i += fold {
		m := vals[i]
		for j := i + 1; j < i+fold && j < len(vals); j++ {
			if vals[j] > m {
				m = vals[j]
			}
		}
		out = append(out, m)
	}
	return out
}

// foldTimes keeps the first stamp of each fold-sized group.
func foldTimes(times []simtime.Time, fold int) []simtime.Time {
	var out []simtime.Time
	for i := 0; i < len(times); i += fold {
		out = append(out, times[i])
	}
	return out
}
