package rte

import (
	"fmt"
	"testing"

	"qsmpi/internal/simtime"
)

func spawnThread(k *simtime.Kernel, name string, fn func(th *simtime.Thread)) {
	h := simtime.NewHost(k, name, 2)
	h.Spawn("main", fn)
}

func TestJoinAssignsDistinctVPIDs(t *testing.T) {
	k := simtime.NewKernel()
	r := NewRegistry(k, simtime.Micros(10))
	got := map[int]bool{}
	for i := 0; i < 5; i++ {
		i := i
		spawnThread(k, fmt.Sprintf("n%d", i), func(th *simtime.Thread) {
			h := r.Join(th, fmt.Sprintf("proc%d", i), i, 0)
			got[h.VPID()] = true
		})
	}
	k.Run()
	if len(got) != 5 {
		t.Fatalf("%d distinct VPIDs, want 5", len(got))
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	k := simtime.NewKernel()
	r := NewRegistry(k, 0)
	panicked := false
	spawnThread(k, "n0", func(th *simtime.Thread) {
		r.Join(th, "same", 0, 0)
		func() {
			defer func() { panicked = recover() != nil }()
			r.Join(th, "same", 1, 0)
		}()
	})
	k.Run()
	if !panicked {
		t.Fatal("duplicate name accepted")
	}
}

func TestResolveAndLeave(t *testing.T) {
	k := simtime.NewKernel()
	r := NewRegistry(k, simtime.Micros(5))
	spawnThread(k, "n0", func(th *simtime.Thread) {
		h := r.Join(th, "p0", 3, 1)
		port, ctx, ok := r.Resolve(h.VPID())
		if !ok || port != 3 || ctx != 1 {
			t.Errorf("Resolve = (%d,%d,%v)", port, ctx, ok)
		}
		h.Leave(th)
		if _, _, ok := r.Resolve(h.VPID()); ok {
			t.Error("departed VPID still resolves")
		}
	})
	k.Run()
}

func TestPublishLookupBlocksUntilAvailable(t *testing.T) {
	k := simtime.NewKernel()
	r := NewRegistry(k, simtime.Micros(5))
	var got []byte
	var lookupDone simtime.Time
	spawnThread(k, "n0", func(th *simtime.Thread) {
		h := r.Join(th, "consumer", 0, 0)
		got = h.Lookup(th, "producer", "qaddr")
		lookupDone = th.Now()
	})
	spawnThread(k, "n1", func(th *simtime.Thread) {
		h := r.Join(th, "producer", 1, 0)
		th.Proc().Sleep(200 * simtime.Microsecond)
		h.Publish(th, "qaddr", []byte{9, 8, 7})
	})
	k.Run()
	if string(got) != string([]byte{9, 8, 7}) {
		t.Fatalf("lookup = %v", got)
	}
	if lookupDone < simtime.Time(200*simtime.Microsecond) {
		t.Fatalf("lookup returned at %v, before publish", lookupDone)
	}
}

func TestLookupVPID(t *testing.T) {
	k := simtime.NewKernel()
	r := NewRegistry(k, 0)
	var resolved int
	spawnThread(k, "n0", func(th *simtime.Thread) {
		h := r.Join(th, "a", 0, 0)
		resolved = h.LookupVPID(th, "b")
	})
	spawnThread(k, "n1", func(th *simtime.Thread) {
		th.Proc().Sleep(simtime.Microsecond)
		r.Join(th, "b", 1, 0)
	})
	k.Run()
	if resolved != 1 {
		t.Fatalf("LookupVPID = %d, want 1", resolved)
	}
}

func TestOOBMessaging(t *testing.T) {
	k := simtime.NewKernel()
	r := NewRegistry(k, simtime.Micros(50))
	var got OOBMsg
	var at simtime.Time
	spawnThread(k, "n0", func(th *simtime.Thread) {
		h := r.Join(th, "a", 0, 0)
		peer := h.LookupVPID(th, "b")
		if err := h.SendOOB(th, peer, "hello", 42); err != nil {
			t.Error(err)
		}
	})
	spawnThread(k, "n1", func(th *simtime.Thread) {
		h := r.Join(th, "b", 1, 0)
		got = h.RecvOOB(th)
		at = th.Now()
	})
	k.Run()
	if got.Tag != "hello" || got.Payload.(int) != 42 || got.From != 0 {
		t.Fatalf("got %+v", got)
	}
	if at < simtime.Time(simtime.Micros(100)) {
		t.Fatalf("OOB delivered at %v, too fast for two 50us hops", at)
	}
}

func TestOOBToDeadProcessErrors(t *testing.T) {
	k := simtime.NewKernel()
	r := NewRegistry(k, 0)
	spawnThread(k, "n0", func(th *simtime.Thread) {
		h := r.Join(th, "a", 0, 0)
		b := r.Join(th, "b-ghost", 1, 0)
		b.Leave(th)
		if err := h.SendOOB(th, b.VPID(), "x", nil); err == nil {
			t.Error("send to departed process succeeded")
		}
	})
	k.Run()
}

func TestRendezvous(t *testing.T) {
	k := simtime.NewKernel()
	r := NewRegistry(k, simtime.Micros(1))
	var done []simtime.Time
	for i := 0; i < 4; i++ {
		i := i
		spawnThread(k, fmt.Sprintf("n%d", i), func(th *simtime.Thread) {
			th.Proc().Sleep(simtime.Duration(i*10) * simtime.Microsecond)
			r.Rendezvous(th, "init", 4)
			done = append(done, th.Now())
		})
	}
	k.Run()
	if len(done) != 4 {
		t.Fatalf("%d procs finished, want 4", len(done))
	}
	// Nobody may pass the barrier before the last arrival (~30us + oob).
	for _, d := range done {
		if d < simtime.Time(30*simtime.Microsecond) {
			t.Fatalf("barrier released at %v, before last arrival", d)
		}
	}
	// Tag must be reusable after completion.
	count := 0
	for i := 0; i < 2; i++ {
		spawnThread(k, fmt.Sprintf("m%d", i), func(th *simtime.Thread) {
			r.Rendezvous(th, "init", 2)
			count++
		})
	}
	k.Run()
	if count != 2 {
		t.Fatalf("rendezvous tag not reusable: %d", count)
	}
}

func TestAliveOrderAndContextAllocation(t *testing.T) {
	k := simtime.NewKernel()
	r := NewRegistry(k, 0)
	if r.AllocContext(0) != 0 || r.AllocContext(0) != 1 || r.AllocContext(1) != 0 {
		t.Fatal("per-port context allocation broken")
	}
	spawnThread(k, "n0", func(th *simtime.Thread) {
		a := r.Join(th, "a", 0, 0)
		r.Join(th, "b", 1, 0)
		c := r.Join(th, "c", 2, 0)
		a.Leave(th)
		alive := r.Alive()
		if len(alive) != 2 || alive[0] != 1 || alive[1] != 2 {
			t.Errorf("alive = %v", alive)
		}
		if p, ok := r.Info(c.VPID()); !ok || p.Name != "c" {
			t.Error("Info lookup failed")
		}
	})
	k.Run()
}
