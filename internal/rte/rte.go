// Package rte models the Open MPI Run-Time Environment: the out-of-band
// services that exist outside the high-performance network. It owns the
// system-wide Elan4 capability (allocation of NIC contexts and virtual
// process ids), the process registry that decouples MPI ranks from VPIDs,
// a modex-style publish/lookup board for connection bootstrap (queue ids,
// E4 addresses), out-of-band messaging, and job rendezvous.
//
// Every RTE operation costs OOBLatency of virtual time: this traffic rides
// a management network (ssh/TCP in real deployments), not QsNet, which is
// why the paper keeps it off the critical path — connection setup happens
// collectively during MPI_Init, and dynamic joins pay RTE costs only when
// they happen.
package rte

import (
	"fmt"

	"qsmpi/internal/simtime"
)

// OOBMsg is one out-of-band message.
type OOBMsg struct {
	From    int // sender VPID
	Tag     string
	Payload any
}

// ProcInfo is the registry's record of one process.
type ProcInfo struct {
	Name  string
	VPID  int
	Port  int // fabric port of its NIC
	Ctx   int // NIC context id
	Alive bool

	attrs   map[string][]byte
	mailbox *simtime.Chan[OOBMsg]
}

// Registry is the system-wide RTE state. It implements elan4.Resolver so
// NICs can translate VPIDs to current locations — the indirection that
// makes dynamic process management possible over a network whose native
// library assumes a static process pool.
type Registry struct {
	k   *simtime.Kernel
	oob simtime.Duration

	procs    map[int]*ProcInfo // by VPID
	byName   map[string]*ProcInfo
	nextVPID int
	nextCtx  map[int]int // per fabric port

	version     *simtime.Counter // bumped on any registry mutation
	rendezvous  map[string]*meet
	oobDelivers int64
}

type meet struct {
	arrived int
	done    *simtime.Signal
}

// NewRegistry creates an empty registry whose OOB operations take
// oobLatency each.
func NewRegistry(k *simtime.Kernel, oobLatency simtime.Duration) *Registry {
	return &Registry{
		k:          k,
		oob:        oobLatency,
		procs:      make(map[int]*ProcInfo),
		byName:     make(map[string]*ProcInfo),
		nextCtx:    make(map[int]int),
		version:    simtime.NewCounter(),
		rendezvous: make(map[string]*meet),
	}
}

// sequentialOnly panics when worker epochs are enabled. RTE traffic rides
// the management network and mutates (or blocks on) registry state shared
// across every rank, so it is only legal in the kernel's sequential
// phases: bringup, finalize and dynamic process events. Pure reads
// (Resolve, Info, Alive, TryRecvOOB) stay legal everywhere — the guarded
// mutators are what keep them race-free during epochs.
func (r *Registry) sequentialOnly(op string) {
	if r.k.InParallel() {
		panic("rte: " + op + " during a parallel phase — RTE operations are sequential-only")
	}
}

// Resolve implements elan4.Resolver: the current location of a VPID.
func (r *Registry) Resolve(vpid int) (port, ctx int, ok bool) {
	p, ok := r.procs[vpid]
	if !ok || !p.Alive {
		return 0, 0, false
	}
	return p.Port, p.Ctx, true
}

// AllocContext claims the next free NIC context on a fabric port, modeling
// "claiming an available context in a system-wide Elan4 capability".
func (r *Registry) AllocContext(port int) int {
	c := r.nextCtx[port]
	r.nextCtx[port] = c + 1
	return c
}

// Handle is one process's session with the registry.
type Handle struct {
	r    *Registry
	info *ProcInfo
}

// Join registers a process running on the NIC at (port, ctx) under a
// unique name and returns its handle with a freshly allocated VPID. Names
// must be unique across the job; reusing one panics (it would alias two
// processes in the modex).
func (r *Registry) Join(th *simtime.Thread, name string, port, ctx int) *Handle {
	r.sequentialOnly("Join")
	th.Proc().Sleep(r.oob)
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("rte: duplicate process name %q", name))
	}
	info := &ProcInfo{
		Name: name, VPID: r.nextVPID, Port: port, Ctx: ctx, Alive: true,
		attrs:   make(map[string][]byte),
		mailbox: simtime.NewChan[OOBMsg](),
	}
	r.nextVPID++
	r.procs[info.VPID] = info
	r.byName[name] = info
	r.version.Add(1)
	return &Handle{r: r, info: info}
}

// VPID returns the process's virtual process id.
func (h *Handle) VPID() int { return h.info.VPID }

// Name returns the registered name.
func (h *Handle) Name() string { return h.info.Name }

// Leave marks the process departed; its VPID stops resolving. A process
// must have drained pending DMA traffic first (the transports enforce
// this), or in-flight descriptors will fail against the dead VPID.
func (h *Handle) Leave(th *simtime.Thread) {
	h.r.sequentialOnly("Leave")
	th.Proc().Sleep(h.r.oob)
	h.info.Alive = false
	h.r.version.Add(1)
}

// Publish stores a key/value on the board under this process's name.
func (h *Handle) Publish(th *simtime.Thread, key string, value []byte) {
	h.r.sequentialOnly("Publish")
	th.Proc().Sleep(h.r.oob)
	cp := make([]byte, len(value))
	copy(cp, value)
	h.info.attrs[key] = cp
	h.r.version.Add(1)
}

// Lookup blocks until the named process has published key, then returns
// the value. It is how peers exchange queue ids and E4 addresses during
// connection setup.
func (h *Handle) Lookup(th *simtime.Thread, procName, key string) []byte {
	h.r.sequentialOnly("Lookup")
	th.Proc().Sleep(h.r.oob)
	for {
		if p, ok := h.r.byName[procName]; ok {
			if v, ok := p.attrs[key]; ok {
				return v
			}
		}
		v := h.r.version.Value()
		h.r.version.WaitFor(th.Proc(), v+1)
	}
}

// LookupVPID blocks until procName is registered and returns its VPID:
// rank→VPID resolution during connection setup.
func (h *Handle) LookupVPID(th *simtime.Thread, procName string) int {
	h.r.sequentialOnly("LookupVPID")
	th.Proc().Sleep(h.r.oob)
	for {
		if p, ok := h.r.byName[procName]; ok {
			return p.VPID
		}
		v := h.r.version.Value()
		h.r.version.WaitFor(th.Proc(), v+1)
	}
}

// SendOOB delivers an out-of-band message to dstVPID's mailbox.
func (h *Handle) SendOOB(th *simtime.Thread, dstVPID int, tag string, payload any) error {
	h.r.sequentialOnly("SendOOB")
	th.Proc().Sleep(h.r.oob)
	dst, ok := h.r.procs[dstVPID]
	if !ok || !dst.Alive {
		return fmt.Errorf("rte: OOB send to unknown VPID %d", dstVPID)
	}
	msg := OOBMsg{From: h.info.VPID, Tag: tag, Payload: payload}
	h.r.k.After(h.r.oob, "rte:oob", func() {
		h.r.oobDelivers++
		dst.mailbox.Send(msg)
	})
	return nil
}

// RecvOOB blocks for the next out-of-band message.
func (h *Handle) RecvOOB(th *simtime.Thread) OOBMsg {
	return h.info.mailbox.Recv(th.Proc())
}

// TryRecvOOB polls the mailbox.
func (h *Handle) TryRecvOOB() (OOBMsg, bool) {
	return h.info.mailbox.TryRecv()
}

// Rendezvous blocks until n processes have arrived at the same tag. The
// tag is consumed once complete, so it can be reused for later phases.
func (r *Registry) Rendezvous(th *simtime.Thread, tag string, n int) {
	r.sequentialOnly("Rendezvous")
	th.Proc().Sleep(r.oob)
	m, ok := r.rendezvous[tag]
	if !ok {
		m = &meet{done: simtime.NewSignal()}
		r.rendezvous[tag] = m
	}
	m.arrived++
	if m.arrived >= n {
		delete(r.rendezvous, tag)
		m.done.Fire()
		return
	}
	m.done.Wait(th.Proc())
}

// Alive returns the VPIDs of live processes, in VPID order.
func (r *Registry) Alive() []int {
	var out []int
	for v := 0; v < r.nextVPID; v++ {
		if p, ok := r.procs[v]; ok && p.Alive {
			out = append(out, v)
		}
	}
	return out
}

// Info returns the record for a VPID, if registered.
func (r *Registry) Info(vpid int) (*ProcInfo, bool) {
	p, ok := r.procs[vpid]
	return p, ok
}
